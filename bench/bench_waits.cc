// Experiment E16 companion — what does wait-statistics accounting cost on
// the hottest path we have? Reuses the E15 exchange workload (1M-row local
// scan-filter-join-aggregate at dop=4), because that query crosses every
// instrumented queue: exchange partition queues on both sides plus the
// Concat/gather machinery — the worst case for per-block timing overhead.
//   1. waits_on  — waits::SetEnabled(true), the default production shape:
//      every blocked interval is timed and charged to the global registry,
//      the query tally, and the owning operator.
//   2. waits_off — waits::SetEnabled(false): hooks still fire but record
//      nothing. The floor.
// Acceptance gate: waits_on within 5% of waits_off (paired minima,
// interleaved run-by-run); the binary EXITS NON-ZERO above that, so the
// ctest wiring turns a regression into a test failure. The design intent
// this guards: timing starts only after a queue predicate has already
// observed "blocked", so the uncontended fast path adds no clock reads.
// Each case appends a metrics-snapshot-backed record to BENCH_waits.json
// via the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/common/waits.h"

namespace dhqp {

namespace {

constexpr int kBigRows = 1000000;
constexpr int kDimRows = 10000;
constexpr double kMaxOverheadPct = 5.0;

// Same data shape as bench_exchange: big.v cycles 0..9972 (~40% qualify
// under v < 4000), dim keyed on v with 23 output groups.
struct WaitsFixture {
  std::unique_ptr<Engine> host;
};

std::unique_ptr<WaitsFixture> BuildFixture(const std::string&) {
  auto fx = std::make_unique<WaitsFixture>();
  fx->host = std::make_unique<Engine>();
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < kBigRows; base += 5000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 9973) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE dim (v INT PRIMARY KEY, w INT)");
  for (int base = 0; base < kDimRows; base += 5000) {
    std::string sql = "INSERT INTO dim VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 23) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  fx->host->options()->execution.dop = 4;
  fx->host->options()->execution.exec_batch_rows = 1024;
  return fx;
}

constexpr const char* kQuery =
    "SELECT dim.w, COUNT(*), SUM(big.v) FROM big JOIN dim "
    "ON big.v = dim.v WHERE big.v < 4000 GROUP BY dim.w";

double OneRunMs(Engine* host) {
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, kQuery);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  return ms;
}

// Min-of-N wall time with waits-on and waits-off interleaved run-by-run, so
// machine-load drift hits both sides equally (the paired-minima estimator
// the DMV and vectorized gates use).
void MeasureWaitsPairMs(Engine* host, double* on_ms, double* off_ms,
                        int reps = 12) {
  *on_ms = 1e300;
  *off_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    waits::SetEnabled(true);
    *on_ms = std::min(*on_ms, OneRunMs(host));
    waits::SetEnabled(false);
    *off_ms = std::min(*off_ms, OneRunMs(host));
  }
  waits::SetEnabled(true);
}

void BM_Waits_Enabled(benchmark::State& state) {
  auto* fx = bench::CachedFixture<WaitsFixture>("waits", BuildFixture);
  waits::SetEnabled(true);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  waits::ResetGlobal();
  double best = 1e300;
  for (int i = 0; i < 8; ++i) best = std::min(best, OneRunMs(fx->host.get()));
  // The metrics snapshot embeds the waits.* histograms this run populated,
  // so BENCH_waits.json records what the accounting saw, not just its cost.
  bench::AppendMetricsRecord("BENCH_waits.json", "waits", "waits_on", best);
}

void BM_Waits_Disabled(benchmark::State& state) {
  auto* fx = bench::CachedFixture<WaitsFixture>("waits", BuildFixture);
  waits::SetEnabled(false);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }
  waits::SetEnabled(true);

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  waits::SetEnabled(false);
  for (int i = 0; i < 8; ++i) best = std::min(best, OneRunMs(fx->host.get()));
  waits::SetEnabled(true);
  bench::AppendMetricsRecord("BENCH_waits.json", "waits", "waits_off", best);
}

// The acceptance gate: full wait accounting must stay within 5% of the
// disabled floor on the most queue-crossing workload in the suite.
void BM_Waits_OverheadGate(benchmark::State& state) {
  auto* fx = bench::CachedFixture<WaitsFixture>("waits", BuildFixture);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  double on_ms, off_ms;
  MeasureWaitsPairMs(fx->host.get(), &on_ms, &off_ms);
  double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  state.counters["overhead_pct"] = overhead_pct;
  char extra[96];
  std::snprintf(extra, sizeof(extra),
                "\"waits_on_ms\":%.3f,\"waits_off_ms\":%.3f", on_ms, off_ms);
  bench::AppendJsonRecord("BENCH_waits.json", "waits", "overhead_gate",
                          on_ms, extra);

  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: wait-statistics overhead %.2f%% exceeds %.2f%% "
                 "(waits_on %.3f ms vs waits_off %.3f ms)\n",
                 overhead_pct, kMaxOverheadPct, on_ms, off_ms);
    std::exit(1);
  }
}

BENCHMARK(BM_Waits_Enabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Waits_Disabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Waits_OverheadGate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
