// Experiment E17 companion — what does live request monitoring cost per
// statement? Reuses the E15/E16 exchange workload (1M-row local
// scan-filter-join-aggregate at dop=4): the query is heavy enough that
// per-statement registry work (map insert/erase under a mutex, live
// counter flushes, memory charges) must disappear into the noise.
//   1. monitor_on  — RequestRegistry enabled, the default production
//      shape: every statement registers, publishes its profile, charges
//      query-wide memory, and unregisters.
//   2. monitor_off — RequestRegistry::SetEnabled(false): Execute falls
//      back to an inline wait tally and ExecContext::memory stays null.
//      The floor.
// Acceptance gate: monitor_on within 5% of monitor_off (paired minima,
// interleaved run-by-run); the binary EXITS NON-ZERO above that, so the
// ctest wiring turns a regression into a test failure. The design intent
// this guards: registration is two O(log n) map operations per statement
// and the live row-count flush rides the existing sampled profiling path —
// nothing per-row is added. Each case appends a record to
// BENCH_requests.json via the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/sysview/requests.h"

namespace dhqp {

namespace {

constexpr int kBigRows = 1000000;
constexpr int kDimRows = 10000;
constexpr double kMaxOverheadPct = 5.0;

struct RequestsFixture {
  std::unique_ptr<Engine> host;
};

std::unique_ptr<RequestsFixture> BuildFixture(const std::string&) {
  auto fx = std::make_unique<RequestsFixture>();
  fx->host = std::make_unique<Engine>();
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < kBigRows; base += 5000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 9973) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE dim (v INT PRIMARY KEY, w INT)");
  for (int base = 0; base < kDimRows; base += 5000) {
    std::string sql = "INSERT INTO dim VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 23) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  fx->host->options()->execution.dop = 4;
  fx->host->options()->execution.exec_batch_rows = 1024;
  return fx;
}

constexpr const char* kQuery =
    "SELECT dim.w, COUNT(*), SUM(big.v) FROM big JOIN dim "
    "ON big.v = dim.v WHERE big.v < 4000 GROUP BY dim.w";

double OneRunMs(Engine* host) {
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, kQuery);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  return ms;
}

// Min-of-N wall time with monitoring on and off interleaved run-by-run, so
// machine-load drift hits both sides equally (the paired-minima estimator
// the waits and DMV gates use).
void MeasureMonitorPairMs(Engine* host, double* on_ms, double* off_ms,
                          int reps = 12) {
  *on_ms = 1e300;
  *off_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    sysview::RequestRegistry::SetEnabled(true);
    *on_ms = std::min(*on_ms, OneRunMs(host));
    sysview::RequestRegistry::SetEnabled(false);
    *off_ms = std::min(*off_ms, OneRunMs(host));
  }
  sysview::RequestRegistry::SetEnabled(true);
}

void BM_Requests_Enabled(benchmark::State& state) {
  auto* fx = bench::CachedFixture<RequestsFixture>("requests", BuildFixture);
  sysview::RequestRegistry::SetEnabled(true);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  for (int i = 0; i < 8; ++i) best = std::min(best, OneRunMs(fx->host.get()));
  bench::AppendMetricsRecord("BENCH_requests.json", "requests", "monitor_on",
                             best);
}

void BM_Requests_Disabled(benchmark::State& state) {
  auto* fx = bench::CachedFixture<RequestsFixture>("requests", BuildFixture);
  sysview::RequestRegistry::SetEnabled(false);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }
  sysview::RequestRegistry::SetEnabled(true);

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  sysview::RequestRegistry::SetEnabled(false);
  for (int i = 0; i < 8; ++i) best = std::min(best, OneRunMs(fx->host.get()));
  sysview::RequestRegistry::SetEnabled(true);
  bench::AppendMetricsRecord("BENCH_requests.json", "requests", "monitor_off",
                             best);
}

// The acceptance gate: live request monitoring must stay within 5% of the
// disabled floor on the heaviest multi-queue workload in the suite.
void BM_Requests_OverheadGate(benchmark::State& state) {
  auto* fx = bench::CachedFixture<RequestsFixture>("requests", BuildFixture);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  double on_ms, off_ms;
  MeasureMonitorPairMs(fx->host.get(), &on_ms, &off_ms);
  double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  state.counters["overhead_pct"] = overhead_pct;
  char extra[96];
  std::snprintf(extra, sizeof(extra),
                "\"monitor_on_ms\":%.3f,\"monitor_off_ms\":%.3f", on_ms,
                off_ms);
  bench::AppendJsonRecord("BENCH_requests.json", "requests", "overhead_gate",
                          on_ms, extra);

  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: request-monitoring overhead %.2f%% exceeds %.2f%% "
                 "(monitor_on %.3f ms vs monitor_off %.3f ms)\n",
                 overhead_pct, kMaxOverheadPct, on_ms, off_ms);
    std::exit(1);
  }
}

BENCHMARK(BM_Requests_Enabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Requests_Disabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Requests_OverheadGate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
