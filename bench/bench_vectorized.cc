// Experiment E14 companion — what does batch-at-a-time execution buy on the
// hot local pipeline, and does the row path stay fast when it is off?
//   1. row_mode   — exec_batch_rows=0: the classic Volcano row loop. This
//      case's wall time is the cross-revision regression tracker: the
//      acceptance bar is that it stays within 2% of the pre-batching
//      baseline, which the BENCH_vectorized.json history makes diffable.
//   2. batch_mode — exec_batch_rows=1024 on the same 1M-row local
//      scan-filter-aggregate query. Acceptance gate: >=1.5x faster than
//      row_mode (paired minima, interleaved); the binary EXITS NON-ZERO
//      below that, so the ctest wiring turns a lost speedup into a failure.
//   3. sweep_*    — batch-size sweep (1..4096) for the E14 curve.
//   4. remote_*   — the same row-vs-batch pair on a remote-heavy plan,
//      where block fetch already amortizes the link and the local batch
//      win is expected to be smaller (recorded, not gated).
// Each case appends a metrics-snapshot-backed record to
// BENCH_vectorized.json via the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/common/metrics.h"

namespace dhqp {

namespace {

constexpr int kLocalRows = 1000000;
constexpr double kMinSpeedup = 1.5;

// 1M-row local table; v cycles 0..96 so `v < 40` keeps ~41% of rows.
struct LocalFixture {
  std::unique_ptr<Engine> host;
};

std::unique_ptr<LocalFixture> BuildLocal(const std::string&) {
  auto fx = std::make_unique<LocalFixture>();
  fx->host = std::make_unique<Engine>();
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < kLocalRows; base += 5000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  return fx;
}

std::unique_ptr<bench::HostWithRemote> BuildRemote(const std::string&) {
  auto fx = bench::MakeHostWithRemote("rsrv", /*latency_us=*/0);
  bench::MustRun(fx->remote.get(),
                 "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < 200000; base += 5000) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + ")";
    }
    bench::MustRun(fx->remote.get(), sql);
  }
  return fx;
}

// The gated workload: scan 1M local rows, qualify ~41%, aggregate.
constexpr const char* kLocalQuery =
    "SELECT COUNT(*), SUM(v) FROM big WHERE v < 40";
constexpr const char* kRemoteQuery =
    "SELECT COUNT(*), SUM(v) FROM rsrv.d.s.t WHERE v < 40";

double OneRunMs(Engine* host, const char* sql, int batch_rows) {
  host->options()->execution.exec_batch_rows = batch_rows;
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, sql);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  return ms;
}

// Min-of-N wall time with row and batch mode interleaved run-by-run, so
// machine-load drift hits both sides equally (the paired-minima estimator
// the observability and DMV gates use).
void MeasureRowBatchPairMs(Engine* host, const char* sql, double* row_ms,
                           double* batch_ms, int reps = 12) {
  *row_ms = 1e300;
  *batch_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    *row_ms = std::min(*row_ms, OneRunMs(host, sql, /*batch_rows=*/0));
    *batch_ms = std::min(*batch_ms, OneRunMs(host, sql, /*batch_rows=*/1024));
  }
  host->options()->execution.exec_batch_rows = 1024;
}

void BM_Vectorized_RowMode(benchmark::State& state) {
  auto* fx = bench::CachedFixture<LocalFixture>("vectorized", BuildLocal);
  fx->host->options()->execution.exec_batch_rows = 0;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kLocalQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double row_ms, batch_ms;
  MeasureRowBatchPairMs(fx->host.get(), kLocalQuery, &row_ms, &batch_ms);
  bench::AppendMetricsRecord("BENCH_vectorized.json", "vectorized",
                             "row_mode", row_ms);
}

void BM_Vectorized_BatchMode(benchmark::State& state) {
  auto* fx = bench::CachedFixture<LocalFixture>("vectorized", BuildLocal);
  fx->host->options()->execution.exec_batch_rows = 1024;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kLocalQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double row_ms, batch_ms;
  MeasureRowBatchPairMs(fx->host.get(), kLocalQuery, &row_ms, &batch_ms);
  double speedup = batch_ms > 0 ? row_ms / batch_ms : 0.0;
  state.counters["speedup"] = speedup;
  bench::AppendMetricsRecord("BENCH_vectorized.json", "vectorized",
                             "batch_mode", batch_ms);

  // The acceptance gate: batching must actually pay on the workload it was
  // built for. Exit hard so the ctest entry fails loudly if the batch path
  // decays into row-at-a-time with extra steps.
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: batch-mode speedup %.2fx below %.2fx "
                 "(row %.3f ms vs batch %.3f ms)\n",
                 speedup, kMinSpeedup, row_ms, batch_ms);
    std::exit(1);
  }
}

// Batch-size sweep for the E14 curve: how fast does the win saturate?
void BM_Vectorized_Sweep(benchmark::State& state) {
  auto* fx = bench::CachedFixture<LocalFixture>("vectorized", BuildLocal);
  const int bs = static_cast<int>(state.range(0));
  fx->host->options()->execution.exec_batch_rows = bs;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kLocalQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  for (int i = 0; i < 6; ++i) {
    best = std::min(best, OneRunMs(fx->host.get(), kLocalQuery, bs));
  }
  char extra[64];
  std::snprintf(extra, sizeof(extra), "\"exec_batch_rows\":%d", bs);
  bench::AppendJsonRecord("BENCH_vectorized.json", "vectorized",
                          "sweep_" + std::to_string(bs), best, extra);
  fx->host->options()->execution.exec_batch_rows = 1024;
}

// Remote-heavy plan: rows arrive through block fetch + prefetch already, so
// the local batch win is the residual row-loop overhead only. Recorded for
// E14, not gated.
void BM_Vectorized_Remote(benchmark::State& state) {
  auto* fx =
      bench::CachedFixture<bench::HostWithRemote>("vec_remote", BuildRemote);
  fx->host->options()->execution.exec_batch_rows = 1024;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kRemoteQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double row_ms, batch_ms;
  MeasureRowBatchPairMs(fx->host.get(), kRemoteQuery, &row_ms, &batch_ms);
  state.counters["speedup"] = batch_ms > 0 ? row_ms / batch_ms : 0.0;
  bench::AppendMetricsRecord("BENCH_vectorized.json", "vectorized",
                             "remote_row", row_ms);
  bench::AppendMetricsRecord("BENCH_vectorized.json", "vectorized",
                             "remote_batch", batch_ms);
}

BENCHMARK(BM_Vectorized_RowMode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vectorized_BatchMode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vectorized_Sweep)
    ->Arg(1)
    ->Arg(32)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vectorized_Remote)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
