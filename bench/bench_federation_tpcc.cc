// Experiment E8 — federated TPC-C scale-out ([17], §4.1.5): new-order-style
// transactions over a coordinator + N member engines with distributed
// partitioned views and 2PC commits. The paper's claim is that the
// partitioned-view machinery lets a federation scale across members; the
// series here is throughput vs member count, plus the pruning counters that
// make it work (each transaction touches exactly one member's data).

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/workloads/tpcc.h"

namespace dhqp {

using workloads::BuildTpccFederation;
using workloads::TpccFederation;
using workloads::TpccOptions;

std::unique_ptr<TpccFederation> BuildFed(const std::string& key) {
  TpccOptions options;
  options.num_members = std::stoi(key);
  options.warehouses_per_member = 2;
  options.customers_per_warehouse = 200;
  options.link_latency_us = 20;
  auto fed = BuildTpccFederation(options);
  if (!fed.ok()) std::abort();
  return std::move(fed).value();
}

void BM_Tpcc_NewOrder(benchmark::State& state) {
  int members = static_cast<int>(state.range(0));
  auto* fed = bench::CachedFixture<TpccFederation>(std::to_string(members),
                                                   BuildFed);
  TransactionCoordinator dtc;
  Rng rng(1234);
  int64_t order_id = 1000000;
  int64_t failures = 0;
  for (auto _ : state) {
    int64_t warehouse = rng.Uniform(1, members * 2);
    int64_t customer = rng.Uniform(1, 200);
    auto result = fed->NewOrder(&dtc, warehouse, customer, order_id++);
    if (!result.ok()) ++failures;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["txn_failures"] = static_cast<double>(failures);
  state.counters["members"] = members;
}
BENCHMARK(BM_Tpcc_NewOrder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// The read half in isolation: partitioned-view customer lookup latency as
// the federation grows — near-flat thanks to startup-filter pruning.
void BM_Tpcc_CustomerLookup(benchmark::State& state) {
  int members = static_cast<int>(state.range(0));
  auto* fed = bench::CachedFixture<TpccFederation>(std::to_string(members),
                                                   BuildFed);
  Rng rng(99);
  int64_t skips = 0, batches = 0, parallel_branches = 0;
  for (auto _ : state) {
    int64_t warehouse = rng.Uniform(1, members * 2);
    int64_t customer = rng.Uniform(1, 200);
    auto r = fed->coordinator->Execute(
        "SELECT c_name, c_balance FROM customers_all WHERE w_id = @w AND "
        "c_id = @c",
        {{"@w", Value::Int64(warehouse)}, {"@c", Value::Int64(customer)}});
    if (!r.ok()) std::abort();
    skips = r->exec_stats.startup_skips;
    batches = r->exec_stats.remote_batches;
    parallel_branches = r->exec_stats.parallel_branches;
    benchmark::DoNotOptimize(*r);
  }
  state.counters["members_skipped"] = static_cast<double>(skips);
  state.counters["remote_batches"] = static_cast<double>(batches);
  state.counters["parallel_branches"] = static_cast<double>(parallel_branches);
}
BENCHMARK(BM_Tpcc_CustomerLookup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
