// Experiment E4 — the remote spool enforcer (§4.1.4): "it is often
// beneficial to spool results from a remote source if multiple scans of the
// data are expected". A nested-loops join rescans its remote inner once per
// outer row; with the spool the remote executes once, without it every
// rescan re-fetches. Sweeps the number of outer rows (rescans).

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

std::unique_ptr<HostWithRemote> BuildSpool(const std::string&) {
  auto pair = bench::MakeHostWithRemote("rsrv", /*latency_us=*/40);
  MustRun(pair->remote.get(), "CREATE TABLE inner_t (k INT PRIMARY KEY, v INT)");
  std::string sql = "INSERT INTO inner_t VALUES ";
  for (int i = 0; i < 2000; ++i) {
    if (i) sql += ",";
    sql += "(" + std::to_string(i) + "," + std::to_string(i * 3) + ")";
  }
  MustRun(pair->remote.get(), sql);
  MustRun(pair->host.get(), "CREATE TABLE outer_t (k INT PRIMARY KEY)");
  for (int i = 0; i < 64; ++i) {
    MustRun(pair->host.get(),
            "INSERT INTO outer_t VALUES (" + std::to_string(i * 31) + ")");
  }
  return pair;
}

void RunSpool(benchmark::State& state, bool spool_enabled) {
  auto* pair = bench::CachedFixture<HostWithRemote>("spool", BuildSpool);
  pair->host->options()->optimizer.enable_spool_enforcer = spool_enabled;
  int64_t outer_rows = state.range(0);
  // A non-equi join predicate forbids hash/merge, forcing nested loops with
  // remote-inner rescans.
  std::string query =
      "SELECT COUNT(*) FROM outer_t o JOIN rsrv.d.s.inner_t i "
      "ON i.k < o.k AND i.v > o.k WHERE o.k < " +
      std::to_string(outer_rows * 31);
  int64_t remote_work = 0, rows_shipped = 0, rescans = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), query);
    remote_work = r.exec_stats.remote_commands + r.exec_stats.remote_opens;
    rows_shipped = r.exec_stats.rows_from_remote;
    rescans = r.exec_stats.spool_rescans;
    benchmark::DoNotOptimize(r);
  }
  state.counters["remote_executions"] = static_cast<double>(remote_work);
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.counters["spool_rescans"] = static_cast<double>(rescans);
  pair->host->options()->optimizer = OptimizerOptions{};
}

void BM_Spool_Enabled(benchmark::State& state) { RunSpool(state, true); }
void BM_Spool_Disabled(benchmark::State& state) { RunSpool(state, false); }

BENCHMARK(BM_Spool_Enabled)->Arg(2)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Spool_Disabled)->Arg(2)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace dhqp

BENCHMARK_MAIN();
