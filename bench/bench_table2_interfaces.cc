// Experiment T2 — reproduces Table 2: the interface-support matrix of Data
// Source / Session objects per provider category (mandatory vs optional
// OLE DB interfaces), derived from live provider introspection. Also times
// the session-creation path those interfaces gate.

#include "bench/bench_util.h"
#include "src/connectors/csv_provider.h"
#include "src/connectors/mail_provider.h"
#include "src/storage/storage_engine.h"

namespace dhqp {

void PrintTable2() {
  struct Entry {
    std::string label;
    ProviderCapabilities caps;
  };
  StorageEngine storage;
  StorageDataSource storage_source(&storage);
  CsvDataSource csv;
  std::vector<Entry> providers = {
      {"SQL provider", SqlServerCapabilities()},
      {"Index provider", storage_source.capabilities()},
      {"Simple provider", csv.capabilities()},
      {"Query provider (Jet)", AccessCapabilities()},
  };
  const char* interfaces[] = {"IDBInitialize", "IDBCreateSession",
                              "IDBProperties", "IOpenRowset",
                              "IDBSchemaRowset", "IDBCreateCommand",
                              "IRowsetIndex",   "IRowsetLocate",
                              "ITransactionJoin"};
  const char* mandatory[] = {"yes", "yes", "yes", "yes", "no",
                             "no",  "no",  "no",  "no"};

  std::printf(
      "\nTable 2 — interfaces of Data Source / Session objects by provider "
      "category\n");
  std::printf("%-18s | %-9s", "Interface", "Mandatory");
  for (const Entry& p : providers) std::printf(" | %-20s", p.label.c_str());
  std::printf("\n%s\n", std::string(110, '-').c_str());
  for (size_t i = 0; i < std::size(interfaces); ++i) {
    std::printf("%-18s | %-9s", interfaces[i], mandatory[i]);
    for (const Entry& p : providers) {
      auto supported = p.caps.SupportedInterfaces();
      bool has = std::find(supported.begin(), supported.end(),
                           interfaces[i]) != supported.end();
      std::printf(" | %-20s", has ? "supported" : "-");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// Session creation over the local storage engine: the paper's claim that
// local and remote access share the same code patterns means this path runs
// on every query.
void BM_CreateSession(benchmark::State& state) {
  StorageEngine storage;
  StorageDataSource source(&storage);
  for (auto _ : state) {
    auto session = source.CreateSession();
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_CreateSession);

}  // namespace dhqp

int main(int argc, char** argv) {
  dhqp::PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
