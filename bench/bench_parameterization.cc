// Experiment E9 — the remote parameterization rule (§4.1.2):
// "parameterization enables pushing parameters into the remote sources and
// opens up a large variety of alternative plans". A selective join drives
// one parameterized remote query per outer row; the ablation ships the
// whole remote table instead. Sweeps the outer cardinality to expose the
// crossover: per-row round trips win while the outer side is small, bulk
// shipping wins once the outer side grows.

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr int kRemoteRows = 30000;
constexpr int kMaxOuter = 512;

std::unique_ptr<HostWithRemote> BuildParam(const std::string&) {
  auto pair = bench::MakeHostWithRemote("rsrv", /*latency_us=*/40);
  MustRun(pair->remote.get(),
          "CREATE TABLE big (k INT PRIMARY KEY, pay VARCHAR(30))");
  for (int base = 0; base < kRemoteRows; base += 1000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int k = base + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(k) + ",'pay-" + std::to_string(k) + "')";
    }
    MustRun(pair->remote.get(), sql);
  }
  MustRun(pair->host.get(), "CREATE TABLE probe (k INT PRIMARY KEY)");
  std::string sql = "INSERT INTO probe VALUES ";
  for (int i = 0; i < kMaxOuter; ++i) {
    if (i) sql += ",";
    sql += "(" + std::to_string(i * 53) + ")";
  }
  MustRun(pair->host.get(), sql);
  return pair;
}

void RunParam(benchmark::State& state, bool parameterization) {
  auto* pair = bench::CachedFixture<HostWithRemote>("param", BuildParam);
  pair->host->options()->optimizer.enable_parameterization = parameterization;
  int64_t outer = state.range(0);
  std::string query =
      "SELECT COUNT(*) FROM probe p JOIN rsrv.d.s.big b ON p.k = b.k "
      "WHERE p.k < " + std::to_string(outer * 53);
  int64_t rows_shipped = 0, commands = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), query);
    rows_shipped = r.exec_stats.rows_from_remote;
    commands = r.exec_stats.remote_commands + r.exec_stats.remote_opens;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.counters["remote_requests"] = static_cast<double>(commands);
  pair->host->options()->optimizer = OptimizerOptions{};
}

void BM_Parameterization_On(benchmark::State& state) { RunParam(state, true); }
void BM_Parameterization_Off(benchmark::State& state) {
  RunParam(state, false);
}

BENCHMARK(BM_Parameterization_On)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parameterization_Off)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace dhqp

BENCHMARK_MAIN();
