// Experiment E13 companion — what does the query store cost, and what does
// reading the DMVs cost? Reuses the observability workload (large remote
// scan, zero link latency so wall time is pure engine CPU):
//   1. store_off — EngineOptions::enable_query_store = false. The floor.
//   2. store_on — the default production shape: every statement is
//      fingerprinted and recorded into the ring + aggregates. Acceptance
//      bar: <=5% over the floor; the binary EXITS NON-ZERO above it, so the
//      ctest wiring turns a regression into a test failure.
//   3. dmv_scan — scanning sys..dm_exec_query_stats with a saturated store
//      (capacity-full ring), the introspection read path itself.
// Each case appends a metrics-snapshot-backed record to BENCH_dmv.json via
// the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/common/metrics.h"

namespace dhqp {

namespace {

std::unique_ptr<bench::HostWithRemote> BuildDmvBench(const std::string&) {
  auto fx = bench::MakeHostWithRemote("rsrv", /*latency_us=*/0);
  bench::MustRun(fx->remote.get(),
                 "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < 20000; base += 5000) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + ")";
    }
    bench::MustRun(fx->remote.get(), sql);
  }
  return fx;
}

constexpr const char* kQuery = "SELECT id, v FROM rsrv.d.s.t";
constexpr double kMaxOverheadPct = 5.0;

double OneRunMs(Engine* host, const char* sql) {
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, sql);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  return ms;
}

// Min-of-N wall time with store-on and store-off interleaved run-by-run, so
// machine-load drift hits both sides equally (same paired-minima estimator
// bench_observability uses for its instrumentation gate).
void MeasureStorePairMs(bench::HostWithRemote* fx, double* on_ms,
                        double* off_ms, int reps = 20) {
  *on_ms = 1e300;
  *off_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    fx->host->options()->enable_query_store = true;
    *on_ms = std::min(*on_ms, OneRunMs(fx->host.get(), kQuery));
    fx->host->options()->enable_query_store = false;
    *off_ms = std::min(*off_ms, OneRunMs(fx->host.get(), kQuery));
  }
  fx->host->options()->enable_query_store = true;
}

void BM_Dmv_QueryStoreOff(benchmark::State& state) {
  auto* fx = bench::CachedFixture<bench::HostWithRemote>("dmv", BuildDmvBench);
  fx->host->options()->enable_query_store = false;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }
  fx->host->options()->enable_query_store = true;

  metrics::Registry::Global().ResetAll();
  double on_ms, off_ms;
  MeasureStorePairMs(fx, &on_ms, &off_ms);
  bench::AppendMetricsRecord("BENCH_dmv.json", "dmv", "store_off", off_ms);
}

void BM_Dmv_QueryStoreOn(benchmark::State& state) {
  auto* fx = bench::CachedFixture<bench::HostWithRemote>("dmv", BuildDmvBench);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double on_ms, off_ms;
  MeasureStorePairMs(fx, &on_ms, &off_ms);
  double overhead_pct =
      off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  state.counters["overhead_pct"] = overhead_pct;
  bench::AppendMetricsRecord("BENCH_dmv.json", "dmv", "store_on", on_ms);

  // The acceptance gate: recording every statement must stay within 5% of
  // the uninstrumented floor on a workload whose statements actually move
  // data. Exit hard so the ctest entry fails loudly on a regression.
  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: query-store overhead %.2f%% exceeds %.2f%% "
                 "(store_on %.3f ms vs store_off %.3f ms)\n",
                 overhead_pct, kMaxOverheadPct, on_ms, off_ms);
    std::exit(1);
  }
}

// The read path: one full scan of dm_exec_query_stats + dm_link_stats with
// the ring saturated (capacity defaults to 256; the fixture has run far
// more statements than that by the time this case executes).
void BM_Dmv_ScanQueryStats(benchmark::State& state) {
  auto* fx = bench::CachedFixture<bench::HostWithRemote>("dmv", BuildDmvBench);
  // Saturate the ring with distinct-literal statements (one fingerprint
  // family, 300 records) so the scan pays full-ring cost.
  for (int i = 0; i < 300; ++i) {
    bench::MustRun(fx->host.get(),
                   "SELECT id FROM rsrv.d.s.t WHERE id = " + std::to_string(i));
  }
  const char* scan =
      "SELECT fingerprint, executions, rows FROM sys..dm_exec_query_stats";
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), scan);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  for (int i = 0; i < 20; ++i) {
    best = std::min(best, OneRunMs(fx->host.get(), scan));
  }
  bench::AppendMetricsRecord("BENCH_dmv.json", "dmv", "dmv_scan", best);
}

BENCHMARK(BM_Dmv_QueryStoreOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dmv_QueryStoreOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dmv_ScanQueryStats)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
