// Experiment E15 companion — what does intra-query parallelism buy on the
// hot local pipeline, and does the serial path stay fast when dop=1?
//   1. dop1  — execution.dop=1: the classic serial executor (no exchange
//      operators anywhere in the plan). This case's wall time is the
//      cross-revision regression tracker: the acceptance bar is that it
//      stays within 2% of the pre-exchange serial baseline, which the
//      BENCH_exchange.json history makes diffable.
//   2. dop4  — execution.dop=4 on the same 1M-row local
//      scan-filter-join-aggregate query. Acceptance gate: >=2x faster than
//      dop1 (paired minima, interleaved); the binary EXITS NON-ZERO below
//      that — but only on machines with >=4 hardware threads, because on a
//      smaller box the workers time-slice one core and the wall-clock gate
//      would measure the scheduler, not the exchange architecture. The
//      structural gate (the dop=4 plan must actually contain exchanges and
//      run parallel workers) applies on every machine.
//   3. sweep_dop* — dop sweep (1, 2, 4, 8) for the E15 scaling curve.
// Each case appends a metrics-snapshot-backed record to BENCH_exchange.json
// via the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/metrics.h"

namespace dhqp {

namespace {

constexpr int kBigRows = 1000000;
constexpr int kDimRows = 10000;
constexpr double kMinSpeedup = 2.0;

// big: 1M rows, v cycles 0..9972 so `v < 4000` qualifies ~40% of rows.
// dim: 10K rows keyed on v, w = v % 23 gives 23 output groups.
struct ExchangeFixture {
  std::unique_ptr<Engine> host;
};

std::unique_ptr<ExchangeFixture> BuildFixture(const std::string&) {
  auto fx = std::make_unique<ExchangeFixture>();
  fx->host = std::make_unique<Engine>();
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < kBigRows; base += 5000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 9973) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE dim (v INT PRIMARY KEY, w INT)");
  for (int base = 0; base < kDimRows; base += 5000) {
    std::string sql = "INSERT INTO dim VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 23) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  return fx;
}

// The gated workload: scan 1M rows, qualify ~40%, hash-join the 10K-row
// dimension, hash-aggregate into 23 groups.
constexpr const char* kQuery =
    "SELECT dim.w, COUNT(*), SUM(big.v) FROM big JOIN dim "
    "ON big.v = dim.v WHERE big.v < 4000 GROUP BY dim.w";

double OneRunMs(Engine* host, int dop, QueryResult* out = nullptr) {
  host->options()->execution.dop = dop;
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, kQuery);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  if (out != nullptr) *out = std::move(r);
  return ms;
}

// Min-of-N wall time with the two dops interleaved run-by-run, so
// machine-load drift hits both sides equally (the paired-minima estimator
// the vectorized and DMV gates use).
void MeasureDopPairMs(Engine* host, int dop_a, int dop_b, double* a_ms,
                      double* b_ms, int reps = 8) {
  *a_ms = 1e300;
  *b_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    *a_ms = std::min(*a_ms, OneRunMs(host, dop_a));
    *b_ms = std::min(*b_ms, OneRunMs(host, dop_b));
  }
  host->options()->execution.dop = 1;
}

void BM_Exchange_Dop1(benchmark::State& state) {
  auto* fx = bench::CachedFixture<ExchangeFixture>("exchange", BuildFixture);
  fx->host->options()->execution.dop = 1;
  fx->host->options()->execution.exec_batch_rows = 1024;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  for (int i = 0; i < 8; ++i) best = std::min(best, OneRunMs(fx->host.get(), 1));
  bench::AppendMetricsRecord("BENCH_exchange.json", "exchange", "dop1", best);
}

void BM_Exchange_Dop4(benchmark::State& state) {
  auto* fx = bench::CachedFixture<ExchangeFixture>("exchange", BuildFixture);
  fx->host->options()->execution.exec_batch_rows = 1024;
  fx->host->options()->execution.dop = 4;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  // Structural gate, machine-independent: at dop=4 the optimizer must pick
  // a parallel plan and the exchange workers must actually run.
  QueryResult parallel;
  OneRunMs(fx->host.get(), 4, &parallel);
  if (parallel.exec_stats.parallel_workers() <= 0) {
    std::fprintf(stderr,
                 "FAIL: dop=4 run reported no parallel workers — the "
                 "exchange enforcer did not parallelize the gated query\n");
    std::exit(1);
  }

  metrics::Registry::Global().ResetAll();
  double serial_ms, parallel_ms;
  MeasureDopPairMs(fx->host.get(), /*dop_a=*/1, /*dop_b=*/4, &serial_ms,
                   &parallel_ms);
  double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  state.counters["speedup"] = speedup;
  bench::AppendMetricsRecord("BENCH_exchange.json", "exchange", "dop4",
                             parallel_ms);

  // The wall-clock gate needs real cores to be meaningful: four workers
  // time-slicing one hardware thread can only tie or lose. Record always,
  // gate only where the speedup is physically possible.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4 && speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: dop=4 speedup %.2fx below %.2fx on %u hardware "
                 "threads (dop1 %.3f ms vs dop4 %.3f ms)\n",
                 speedup, kMinSpeedup, hw, serial_ms, parallel_ms);
    std::exit(1);
  }
  if (hw < 4) {
    std::fprintf(stderr,
                 "note: %u hardware thread(s) — recording dop=4 speedup "
                 "%.2fx without gating (needs >=4 cores)\n",
                 hw, speedup);
  }
}

// Dop sweep for the E15 curve: where does scaling saturate, and what does
// the exchange overhead cost when workers outnumber cores?
void BM_Exchange_Sweep(benchmark::State& state) {
  auto* fx = bench::CachedFixture<ExchangeFixture>("exchange", BuildFixture);
  const int dop = static_cast<int>(state.range(0));
  fx->host->options()->execution.exec_batch_rows = 1024;
  fx->host->options()->execution.dop = dop;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  metrics::Registry::Global().ResetAll();
  double best = 1e300;
  for (int i = 0; i < 4; ++i) {
    best = std::min(best, OneRunMs(fx->host.get(), dop));
  }
  char extra[64];
  std::snprintf(extra, sizeof(extra), "\"dop\":%d", dop);
  bench::AppendJsonRecord("BENCH_exchange.json", "exchange",
                          "sweep_dop" + std::to_string(dop), best, extra);
  fx->host->options()->execution.dop = 1;
}

BENCHMARK(BM_Exchange_Dop1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Exchange_Dop4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Exchange_Sweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
