// Experiment E18 companion — what does memory-grant admission cost when
// memory is plentiful, and what does spilling cost when it is not?
//   1. admission — the 1M-row dop=4 scan-filter-join-aggregate (the same
//      workload the exchange/waits/requests gates use) with the governor
//      disabled (max_server_memory_bytes=0) vs enabled with a budget far
//      above the workload's needs, so the only difference is the admission
//      machinery itself: estimate the grant, take the semaphore, release
//      it. Acceptance gate: the governed run is within 5% of the ungoverned
//      floor (paired minima, interleaved); the binary EXITS NON-ZERO above
//      that.
//   2. spill — the same join under a 256 KiB per-query grant, forcing the
//      hash-join build side (10K-row dim) and probe partitions through the
//      Grace spill path. Structural gate: the tight run must actually
//      report spills (a silent no-spill run would gate nothing). Wall gate:
//      the spilled run stays within 3x the in-memory run — partitioned
//      spill does extra I/O, but it must degrade, not collapse.
// Each case appends a metrics-snapshot-backed record to BENCH_governor.json
// via the shared bench_util writer.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/common/row.h"

namespace dhqp {

namespace {

constexpr int kBigRows = 1000000;
constexpr int kDimRows = 10000;
constexpr double kMaxAdmissionOverhead = 1.05;
constexpr double kMaxSpillSlowdown = 3.0;

// big: 1M rows, v cycles 0..9972 so `v < 4000` qualifies ~40% of rows.
// dim: 10K rows keyed on v, w = v % 23 gives 23 output groups. Same data
// shape as bench_exchange so the admission numbers are comparable to the
// exchange/waits/requests gate history.
struct GovernorFixture {
  std::unique_ptr<Engine> host;
};

std::unique_ptr<GovernorFixture> BuildFixture(const std::string&) {
  auto fx = std::make_unique<GovernorFixture>();
  fx->host = std::make_unique<Engine>();
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < kBigRows; base += 5000) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 9973) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  bench::MustRun(fx->host.get(),
                 "CREATE TABLE dim (v INT PRIMARY KEY, w INT)");
  for (int base = 0; base < kDimRows; base += 5000) {
    std::string sql = "INSERT INTO dim VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 23) + ")";
    }
    bench::MustRun(fx->host.get(), sql);
  }
  return fx;
}

// The gated workload: scan 1M rows, qualify ~40%, hash-join the 10K-row
// dimension (big.v carries no index, so the join must build a hash table —
// an indexed key would merge-join and leave nothing for the governor to
// grant), hash-aggregate into 23 groups.
constexpr const char* kQuery =
    "SELECT dim.w, COUNT(*), SUM(big.v) FROM big JOIN dim "
    "ON big.v = dim.v WHERE big.v < 4000 GROUP BY dim.w";

// Governor regimes under measurement. `off` disables admission entirely;
// `huge` admits everything instantly (4 GiB budget, no per-query cap) so
// only the admission bookkeeping is on the clock; `tight` clamps every
// statement to a 256 KiB grant, forcing the join build to spill.
struct GovernorMode {
  int64_t budget;
  int64_t per_query;
};
constexpr GovernorMode kOff = {0, 0};
constexpr GovernorMode kHuge = {4LL << 30, 0};
constexpr GovernorMode kTight = {256LL << 20, 256LL << 10};

void ApplyMode(Engine* host, const GovernorMode& mode) {
  host->options()->max_server_memory_bytes = mode.budget;
  host->options()->max_grant_per_query_bytes = mode.per_query;
}

// Order-insensitive answer key: hash aggregation emits groups in whichever
// order the (possibly spilled) partitions produced them.
std::string SortedRows(const QueryResult& r) {
  if (r.rowset == nullptr) return "";
  std::vector<std::string> lines;
  for (const Row& row : r.rowset->rows()) lines.push_back(RowToString(row));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

double OneRunMs(Engine* host, const GovernorMode& mode, int dop,
                QueryResult* out = nullptr) {
  ApplyMode(host, mode);
  host->options()->execution.dop = dop;
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, kQuery);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  if (out != nullptr) *out = std::move(r);
  return ms;
}

// Min-of-N wall time with the two governor modes interleaved run-by-run, so
// machine-load drift hits both sides equally (the paired-minima estimator
// the exchange/waits/requests gates use).
void MeasureModePairMs(Engine* host, const GovernorMode& mode_a,
                       const GovernorMode& mode_b, int dop, double* a_ms,
                       double* b_ms, int reps = 8) {
  *a_ms = 1e300;
  *b_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    *a_ms = std::min(*a_ms, OneRunMs(host, mode_a, dop));
    *b_ms = std::min(*b_ms, OneRunMs(host, mode_b, dop));
  }
  ApplyMode(host, kOff);
  host->options()->execution.dop = 1;
}

void BM_Governor_Admission(benchmark::State& state) {
  auto* fx = bench::CachedFixture<GovernorFixture>("governor", BuildFixture);
  fx->host->options()->execution.exec_batch_rows = 1024;
  ApplyMode(fx->host.get(), kHuge);
  fx->host->options()->execution.dop = 4;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  // A 4 GiB budget must admit this workload without a single spill —
  // otherwise the "overhead only" premise of the gate is wrong.
  QueryResult governed;
  OneRunMs(fx->host.get(), kHuge, 4, &governed);
  if (governed.exec_stats.spills > 0) {
    std::fprintf(stderr,
                 "FAIL: governed run under a 4 GiB budget spilled %lld "
                 "times — the admission gate would be measuring spill I/O, "
                 "not admission overhead\n",
                 static_cast<long long>(governed.exec_stats.spills));
    std::exit(1);
  }

  metrics::Registry::Global().ResetAll();
  double off_ms, on_ms;
  MeasureModePairMs(fx->host.get(), kOff, kHuge, /*dop=*/4, &off_ms, &on_ms);
  double overhead = off_ms > 0 ? on_ms / off_ms : 1e300;
  state.counters["overhead"] = overhead;
  bench::AppendMetricsRecord("BENCH_governor.json", "governor", "admission",
                             on_ms);
  bench::AppendJsonRecord("BENCH_governor.json", "governor",
                          "admission_floor_governor_off", off_ms);

  if (overhead > kMaxAdmissionOverhead) {
    std::fprintf(stderr,
                 "FAIL: admission overhead %.3fx exceeds %.2fx "
                 "(governor off %.3f ms vs on %.3f ms)\n",
                 overhead, kMaxAdmissionOverhead, off_ms, on_ms);
    std::exit(1);
  }
}

void BM_Governor_Spill(benchmark::State& state) {
  auto* fx = bench::CachedFixture<GovernorFixture>("governor", BuildFixture);
  fx->host->options()->execution.exec_batch_rows = 1024;
  ApplyMode(fx->host.get(), kTight);
  fx->host->options()->execution.dop = 1;
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  // Structural gate, machine-independent: the tight run must actually take
  // the spill path, and both regimes must agree on the answer.
  QueryResult spilled, in_memory;
  OneRunMs(fx->host.get(), kTight, 1, &spilled);
  OneRunMs(fx->host.get(), kOff, 1, &in_memory);
  if (spilled.exec_stats.spills <= 0 || spilled.exec_stats.spill_bytes <= 0) {
    std::fprintf(stderr,
                 "FAIL: the 256 KiB-grant run reported no spills — the "
                 "spill gate is not exercising the spill path\n");
    std::exit(1);
  }
  if (SortedRows(spilled) != SortedRows(in_memory)) {
    std::fprintf(stderr,
                 "FAIL: spilled and in-memory runs disagree on the answer "
                 "(%zu vs %zu rows)\n",
                 spilled.rowset != nullptr ? spilled.rowset->rows().size() : 0,
                 in_memory.rowset != nullptr ? in_memory.rowset->rows().size()
                                             : 0);
    std::exit(1);
  }

  metrics::Registry::Global().ResetAll();
  double in_memory_ms, spilled_ms;
  MeasureModePairMs(fx->host.get(), kOff, kTight, /*dop=*/1, &in_memory_ms,
                    &spilled_ms);
  double slowdown = in_memory_ms > 0 ? spilled_ms / in_memory_ms : 1e300;
  state.counters["slowdown"] = slowdown;
  char extra[96];
  std::snprintf(extra, sizeof(extra), "\"spills\":%lld,\"spill_bytes\":%lld",
                static_cast<long long>(spilled.exec_stats.spills),
                static_cast<long long>(spilled.exec_stats.spill_bytes));
  bench::AppendJsonRecord("BENCH_governor.json", "governor", "spill",
                          spilled_ms, extra);
  bench::AppendJsonRecord("BENCH_governor.json", "governor",
                          "spill_floor_in_memory", in_memory_ms);

  if (slowdown > kMaxSpillSlowdown) {
    std::fprintf(stderr,
                 "FAIL: spilled run %.3fx slower than in-memory, above the "
                 "%.1fx bar (in-memory %.3f ms vs spilled %.3f ms)\n",
                 slowdown, kMaxSpillSlowdown, in_memory_ms, spilled_ms);
    std::exit(1);
  }
}

BENCHMARK(BM_Governor_Admission)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Governor_Spill)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
