// Experiment F3 — the object hierarchy of Figure 3: DataSource ->
// CreateSession -> CreateCommand -> Execute -> Rowset. Times each step of
// the lifecycle over local and linked providers so the per-object costs of
// the component model are visible.

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MakeHostWithRemote;
using bench::MustRun;

std::unique_ptr<HostWithRemote> BuildPair(const std::string&) {
  auto pair = MakeHostWithRemote();
  MustRun(pair->remote.get(), "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  MustRun(pair->remote.get(), "INSERT INTO t VALUES (1,2),(3,4),(5,6)");
  return pair;
}

// Full lifecycle: session + command + execute + drain (Fig 3's arrows,
// CoCreateInstance through IRowset).
void BM_Fig3_FullLifecycle(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>("pair", BuildPair);
  DataSource* source = *pair->host->catalog()->GetLinkedServer("rsrv");
  for (auto _ : state) {
    auto session = source->CreateSession();
    auto command = (*session)->CreateCommand();
    (void)(*command)->SetText("SELECT a, b FROM t");
    auto rowset = (*command)->Execute();
    auto rows = DrainRowset(rowset->get());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Fig3_FullLifecycle);

// IOpenRowset path: no command object, straight to the base rowset (what
// simple providers offer).
void BM_Fig3_OpenRowset(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>("pair", BuildPair);
  DataSource* source = *pair->host->catalog()->GetLinkedServer("rsrv");
  auto session = source->CreateSession();
  for (auto _ : state) {
    auto rowset = (*session)->OpenRowset("t");
    auto rows = DrainRowset(rowset->get());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Fig3_OpenRowset);

// Reusing a cached session (what the catalog does) vs creating per query.
void BM_Fig3_SessionReuse(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>("pair", BuildPair);
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), "SELECT COUNT(*) FROM rsrv.d.s.t");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig3_SessionReuse);

}  // namespace dhqp

BENCHMARK_MAIN();
