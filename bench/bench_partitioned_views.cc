// Experiment E5 — (distributed) partitioned views (§4.1.5): TPC-H lineitem
// partitioned by commit-date year over 7 member servers. Measures, per
// pruning regime:
//   no pruning (constraints ignored) / static pruning (constant predicates)
//   / startup filters (parameterized predicates)
// with partitions-touched and link traffic as the primary series.

#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

namespace dhqp {

using bench::MustRun;

struct Federation {
  std::unique_ptr<Engine> host;
  std::vector<std::unique_ptr<Engine>> members;
  std::vector<std::unique_ptr<net::Link>> links;

  int64_t MembersTouched() const {
    int64_t n = 0;
    for (const auto& link : links) n += link->stats().messages > 0 ? 1 : 0;
    return n;
  }
  void ResetLinks() {
    for (auto& link : links) link->ResetStats();
  }
};

std::unique_ptr<Federation> BuildFederation(const std::string&) {
  auto fed = std::make_unique<Federation>();
  fed->host = std::make_unique<Engine>();
  workloads::TpchOptions options;
  options.scale_factor = 0.002;
  std::string view = "CREATE VIEW lineitem AS ";
  for (int year = 1992; year <= 1998; ++year) {
    auto member = std::make_unique<Engine>();
    std::string table = "lineitem_" + std::to_string(year);
    Status st = workloads::PopulateLineitemPartition(member.get(), options,
                                                     table, year, year);
    if (!st.ok()) std::abort();
    std::string server = "srv" + std::to_string(year);
    auto link = std::make_unique<net::Link>(server, /*latency_us=*/40,
                                            /*us_per_kb=*/1.0, true);
    auto provider = std::make_shared<LinkedDataSource>(
        std::make_shared<EngineDataSource>(member.get()), link.get());
    if (!fed->host->AddLinkedServer(server, provider).ok()) std::abort();
    if (year > 1992) view += " UNION ALL ";
    view += "SELECT * FROM " + server + ".tpch.dbo." + table;
    fed->members.push_back(std::move(member));
    fed->links.push_back(std::move(link));
  }
  MustRun(fed->host.get(), view);
  // Warm metadata/statistics caches so measured traffic is execution-only.
  MustRun(fed->host.get(), "SELECT COUNT(*) FROM lineitem");
  MustRun(fed->host.get(), "SELECT COUNT(*) FROM lineitem WHERE "
                           "l_commitdate = @d",
          {{"@d", Value::Date(CivilToDays(1995, 6, 1))}});
  return fed;
}

// Static pruning: constant single-year range.
void BM_Dpv_StaticPruning(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  fed->host->options()->optimizer.enable_static_pruning = state.range(0) != 0;
  int64_t touched = 0;
  for (auto _ : state) {
    fed->ResetLinks();
    QueryResult r = MustRun(
        fed->host.get(),
        "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem "
        "WHERE l_commitdate BETWEEN '1995-01-01' AND '1995-12-31'");
    touched = fed->MembersTouched();
    benchmark::DoNotOptimize(r);
  }
  state.counters["members_touched"] = static_cast<double>(touched);
  state.SetLabel(state.range(0) != 0 ? "static-pruning" : "no-pruning");
  fed->host->options()->optimizer = OptimizerOptions{};
}
BENCHMARK(BM_Dpv_StaticPruning)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Runtime pruning: the same query parameterized; startup filters decide at
// execution time.
void BM_Dpv_StartupFilters(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  fed->host->options()->optimizer.enable_startup_filters = state.range(0) != 0;
  int64_t touched = 0, skips = 0;
  int64_t day = CivilToDays(1996, 3, 15);
  for (auto _ : state) {
    fed->ResetLinks();
    QueryResult r = MustRun(
        fed->host.get(),
        "SELECT COUNT(*) FROM lineitem WHERE l_commitdate = @d",
        {{"@d", Value::Date(day)}});
    touched = fed->MembersTouched();
    skips = r.exec_stats.startup_skips;
    benchmark::DoNotOptimize(r);
  }
  state.counters["members_touched"] = static_cast<double>(touched);
  state.counters["startup_skips"] = static_cast<double>(skips);
  state.SetLabel(state.range(0) != 0 ? "startup-filters" : "no-runtime-pruning");
  fed->host->options()->optimizer = OptimizerOptions{};
}
BENCHMARK(BM_Dpv_StartupFilters)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Fan-out query with no pruning opportunity (whole-view aggregate): the
// baseline all-members cost.
void BM_Dpv_FullViewAggregate(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  for (auto _ : state) {
    QueryResult r = MustRun(fed->host.get(),
                            "SELECT COUNT(*), MAX(l_extendedprice) "
                            "FROM lineitem");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Dpv_FullViewAggregate)->Unit(benchmark::kMillisecond);

// INSERT routing throughput through the view.
void BM_Dpv_InsertRouting(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  int64_t key = 5000000;
  for (auto _ : state) {
    int year = 1992 + static_cast<int>(key % 7);
    MustRun(fed->host.get(),
            "INSERT INTO lineitem VALUES (" + std::to_string(key++) +
                ", 1, 1, 2, 42.0, '" + std::to_string(year) +
                "-06-15', '" + std::to_string(year) + "-06-20')");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dpv_InsertRouting)->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
