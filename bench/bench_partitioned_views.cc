// Experiment E5 — (distributed) partitioned views (§4.1.5): TPC-H lineitem
// partitioned by commit-date year over 7 member servers. Measures, per
// pruning regime:
//   no pruning (constraints ignored) / static pruning (constant predicates)
//   / startup filters (parameterized predicates)
// with partitions-touched and link traffic as the primary series.

#include <chrono>

#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

namespace dhqp {

using bench::MustRun;

struct Federation {
  std::unique_ptr<Engine> host;
  std::vector<std::unique_ptr<Engine>> members;
  std::vector<std::unique_ptr<net::Link>> links;

  int64_t MembersTouched() const {
    int64_t n = 0;
    for (const auto& link : links) n += link->stats().messages > 0 ? 1 : 0;
    return n;
  }
  void ResetLinks() {
    for (auto& link : links) link->ResetStats();
  }
};

std::unique_ptr<Federation> BuildFederation(const std::string& kind) {
  auto fed = std::make_unique<Federation>();
  fed->host = std::make_unique<Engine>();
  workloads::TpchOptions options;
  // "wan": a bigger federation over slower links, for the data-movement
  // pipeline experiment (row shipping rather than pruning).
  options.scale_factor = kind == "wan" ? 0.01 : 0.002;
  double latency_us = kind == "wan" ? 150 : 40;
  std::string view = "CREATE VIEW lineitem AS ";
  for (int year = 1992; year <= 1998; ++year) {
    auto member = std::make_unique<Engine>();
    std::string table = "lineitem_" + std::to_string(year);
    Status st = workloads::PopulateLineitemPartition(member.get(), options,
                                                     table, year, year);
    if (!st.ok()) std::abort();
    std::string server = "srv" + std::to_string(year);
    auto link = std::make_unique<net::Link>(server, latency_us,
                                            /*us_per_kb=*/1.0, true);
    auto provider = std::make_shared<LinkedDataSource>(
        std::make_shared<EngineDataSource>(member.get()), link.get());
    if (!fed->host->AddLinkedServer(server, provider).ok()) std::abort();
    if (year > 1992) view += " UNION ALL ";
    view += "SELECT * FROM " + server + ".tpch.dbo." + table;
    fed->members.push_back(std::move(member));
    fed->links.push_back(std::move(link));
  }
  MustRun(fed->host.get(), view);
  // Warm metadata/statistics caches so measured traffic is execution-only.
  MustRun(fed->host.get(), "SELECT COUNT(*) FROM lineitem");
  MustRun(fed->host.get(), "SELECT COUNT(*) FROM lineitem WHERE "
                           "l_commitdate = @d",
          {{"@d", Value::Date(CivilToDays(1995, 6, 1))}});
  return fed;
}

// Static pruning: constant single-year range.
void BM_Dpv_StaticPruning(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  fed->host->options()->optimizer.enable_static_pruning = state.range(0) != 0;
  int64_t touched = 0;
  for (auto _ : state) {
    fed->ResetLinks();
    QueryResult r = MustRun(
        fed->host.get(),
        "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem "
        "WHERE l_commitdate BETWEEN '1995-01-01' AND '1995-12-31'");
    touched = fed->MembersTouched();
    benchmark::DoNotOptimize(r);
  }
  state.counters["members_touched"] = static_cast<double>(touched);
  state.SetLabel(state.range(0) != 0 ? "static-pruning" : "no-pruning");
  fed->host->options()->optimizer = OptimizerOptions{};
}
BENCHMARK(BM_Dpv_StaticPruning)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Runtime pruning: the same query parameterized; startup filters decide at
// execution time.
void BM_Dpv_StartupFilters(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  fed->host->options()->optimizer.enable_startup_filters = state.range(0) != 0;
  int64_t touched = 0, skips = 0;
  int64_t day = CivilToDays(1996, 3, 15);
  for (auto _ : state) {
    fed->ResetLinks();
    QueryResult r = MustRun(
        fed->host.get(),
        "SELECT COUNT(*) FROM lineitem WHERE l_commitdate = @d",
        {{"@d", Value::Date(day)}});
    touched = fed->MembersTouched();
    skips = r.exec_stats.startup_skips;
    benchmark::DoNotOptimize(r);
  }
  state.counters["members_touched"] = static_cast<double>(touched);
  state.counters["startup_skips"] = static_cast<double>(skips);
  state.SetLabel(state.range(0) != 0 ? "startup-filters" : "no-runtime-pruning");
  fed->host->options()->optimizer = OptimizerOptions{};
}
BENCHMARK(BM_Dpv_StartupFilters)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Fan-out query with no pruning opportunity (whole-view aggregate): the
// baseline all-members cost.
void BM_Dpv_FullViewAggregate(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  for (auto _ : state) {
    QueryResult r = MustRun(fed->host.get(),
                            "SELECT COUNT(*), MAX(l_extendedprice) "
                            "FROM lineitem");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Dpv_FullViewAggregate)->Unit(benchmark::kMillisecond);

// Tentpole experiment: shipping the whole view's rows to the host (a
// data-movement query — no aggregate pushdown, no pruning) across a 7-member
// WAN-ish federation, under three data-movement regimes:
//   0: row-at-a-time   — prefetch off, sequential members (the seed's path),
//   1: block+prefetch  — async block fetch per member, sequential members,
//   2: block+parallel  — block fetch plus members drained at DOP 4.
// Rows shipped are identical across regimes; messages and wall clock drop.
void BM_Dpv_FanoutPipeline(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("wan", BuildFederation);
  int mode = static_cast<int>(state.range(0));
  ExecOptions& exec = fed->host->options()->execution;
  exec.enable_remote_prefetch = mode >= 1;
  exec.concat_dop = mode == 2 ? 4 : 1;
  int64_t parallel_branches = 0, stalls = 0, batches = 0, rows = 0;
  double wall_ms = 0;
  net::LinkStats total{};
  for (auto _ : state) {
    fed->ResetLinks();
    auto start = std::chrono::steady_clock::now();
    QueryResult r = MustRun(fed->host.get(),
                            "SELECT l_orderkey, l_extendedprice "
                            "FROM lineitem WHERE l_quantity >= 1");
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    rows = static_cast<int64_t>(r.rowset->rows().size());
    parallel_branches = r.exec_stats.parallel_branches;
    stalls = r.exec_stats.prefetch_stalls;
    batches = r.exec_stats.remote_batches;
    total = net::LinkStats{};
    for (const auto& link : fed->links) {
      net::LinkStats s = link->stats();
      total.messages += s.messages;
      total.rows += s.rows;
      total.bytes += s.bytes;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["link_messages"] = static_cast<double>(total.messages);
  state.counters["remote_batches"] = static_cast<double>(batches);
  state.counters["prefetch_stalls"] = static_cast<double>(stalls);
  state.counters["parallel_branches"] = static_cast<double>(parallel_branches);
  const char* label = mode == 0   ? "row-at-a-time"
                      : mode == 1 ? "block+prefetch"
                                  : "block+parallel(dop4)";
  state.SetLabel(label);
  bench::AppendBenchRecord("partitioned_views",
                           std::string("fanout_") + label, wall_ms, total);
  exec = ExecOptions{};
}
BENCHMARK(BM_Dpv_FanoutPipeline)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// INSERT routing throughput through the view.
void BM_Dpv_InsertRouting(benchmark::State& state) {
  auto* fed = bench::CachedFixture<Federation>("fed", BuildFederation);
  int64_t key = 5000000;
  for (auto _ : state) {
    int year = 1992 + static_cast<int>(key % 7);
    MustRun(fed->host.get(),
            "INSERT INTO lineitem VALUES (" + std::to_string(key++) +
                ", 1, 1, 2, 42.0, '" + std::to_string(year) +
                "-06-15', '" + std::to_string(year) + "-06-20')");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dpv_InsertRouting)->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
