// Execution semantics: SQL three-valued logic, NULL handling in joins and
// aggregates, DISTINCT aggregates, empty inputs, LIKE patterns.

#include "tests/test_util.h"

namespace dhqp {
namespace {

class ExecSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_,
                "CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR(10))");
    MustExecute(&engine_,
                "INSERT INTO t VALUES (1, 10, 'abc'), (2, NULL, 'abd'), "
                "(3, 30, NULL), (4, NULL, NULL)");
  }
  Engine engine_;
};

TEST_F(ExecSemanticsTest, NullComparisonsAreUnknown) {
  // NULL = NULL is unknown, never true.
  QueryResult r = MustExecute(&engine_, "SELECT id FROM t WHERE v = NULL");
  EXPECT_EQ(r.rowset->rows().size(), 0u);
  r = MustExecute(&engine_, "SELECT id FROM t WHERE v <> 10");
  EXPECT_EQ(RowsToString(r), "(3)");  // NULL rows excluded.
}

TEST_F(ExecSemanticsTest, IsNullPredicates) {
  QueryResult r = MustExecute(
      &engine_, "SELECT id FROM t WHERE v IS NULL ORDER BY id");
  EXPECT_EQ(RowsToString(r), "(2)(4)");
  r = MustExecute(
      &engine_, "SELECT id FROM t WHERE v IS NOT NULL AND s IS NULL");
  EXPECT_EQ(RowsToString(r), "(3)");
}

TEST_F(ExecSemanticsTest, ThreeValuedOrAnd) {
  // v > 5 OR s = 'abc': row 2 (v NULL, s='abd') -> unknown OR false -> no.
  // Row 4 (both NULL) -> unknown. Rows 1, 3 qualify.
  QueryResult r = MustExecute(
      &engine_, "SELECT id FROM t WHERE v > 5 OR s = 'abc' ORDER BY id");
  EXPECT_EQ(RowsToString(r), "(1)(3)");
  // NOT over unknown stays unknown (filtered out).
  r = MustExecute(&engine_, "SELECT id FROM t WHERE NOT (v > 5) ORDER BY id");
  EXPECT_EQ(r.rowset->rows().size(), 0u);
}

TEST_F(ExecSemanticsTest, AggregatesIgnoreNulls) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t");
  EXPECT_EQ(RowsToString(r), "(4, 2, 40, 20, 10, 30)");
}

TEST_F(ExecSemanticsTest, AggregatesOverEmptyInput) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT COUNT(*), SUM(v), MIN(v) FROM t WHERE id > 100");
  EXPECT_EQ(RowsToString(r), "(0, NULL, NULL)");
  // Grouped aggregate over empty input yields no rows.
  r = MustExecute(
      &engine_, "SELECT v, COUNT(*) FROM t WHERE id > 100 GROUP BY v");
  EXPECT_EQ(r.rowset->rows().size(), 0u);
}

TEST_F(ExecSemanticsTest, DistinctAggregates) {
  MustExecute(&engine_, "INSERT INTO t VALUES (5, 10, 'abc')");
  QueryResult r = MustExecute(
      &engine_, "SELECT COUNT(v), COUNT(DISTINCT v), SUM(DISTINCT v) FROM t");
  EXPECT_EQ(RowsToString(r), "(3, 2, 40)");
}

TEST_F(ExecSemanticsTest, GroupByNullFormsOneGroup) {
  QueryResult r = MustExecute(
      &engine_, "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v");
  // NULL group first (NULL sorts low), then 10, 30.
  EXPECT_EQ(RowsToString(r), "(NULL, 2)(10, 1)(30, 1)");
}

TEST_F(ExecSemanticsTest, JoinsNeverMatchNullKeys) {
  MustExecute(&engine_, "CREATE TABLE u (v INT, tag VARCHAR(4))");
  MustExecute(&engine_, "INSERT INTO u VALUES (10, 'x'), (NULL, 'n')");
  QueryResult r = MustExecute(
      &engine_, "SELECT t.id, u.tag FROM t JOIN u ON t.v = u.v");
  EXPECT_EQ(RowsToString(r), "(1, x)");
}

TEST_F(ExecSemanticsTest, LeftJoinNullPadding) {
  MustExecute(&engine_, "CREATE TABLE u (v INT, tag VARCHAR(4))");
  MustExecute(&engine_, "INSERT INTO u VALUES (10, 'x')");
  QueryResult r = MustExecute(
      &engine_,
      "SELECT t.id, u.tag FROM t LEFT JOIN u ON t.v = u.v ORDER BY t.id");
  EXPECT_EQ(RowsToString(r), "(1, x)(2, NULL)(3, NULL)(4, NULL)");
}

TEST_F(ExecSemanticsTest, LikePatterns) {
  QueryResult r = MustExecute(
      &engine_, "SELECT id FROM t WHERE s LIKE 'ab%' ORDER BY id");
  EXPECT_EQ(RowsToString(r), "(1)(2)");
  r = MustExecute(&engine_, "SELECT id FROM t WHERE s LIKE 'ab_' ORDER BY id");
  EXPECT_EQ(RowsToString(r), "(1)(2)");
  r = MustExecute(&engine_, "SELECT id FROM t WHERE s LIKE '%c'");
  EXPECT_EQ(RowsToString(r), "(1)");
  r = MustExecute(&engine_, "SELECT id FROM t WHERE s NOT LIKE 'ab%'");
  EXPECT_EQ(r.rowset->rows().size(), 0u);  // NULL s rows are unknown.
}

TEST_F(ExecSemanticsTest, DivisionByZeroIsError) {
  auto r = engine_.Execute("SELECT 1 / 0");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecSemanticsTest, ArithmeticWithNullYieldsNull) {
  QueryResult r = MustExecute(
      &engine_, "SELECT id, v + 1 FROM t WHERE id = 2");
  EXPECT_EQ(RowsToString(r), "(2, NULL)");
}

TEST_F(ExecSemanticsTest, TopZeroAndBeyondCardinality) {
  QueryResult r = MustExecute(&engine_, "SELECT TOP 0 id FROM t");
  EXPECT_EQ(r.rowset->rows().size(), 0u);
  r = MustExecute(&engine_, "SELECT TOP 100 id FROM t");
  EXPECT_EQ(r.rowset->rows().size(), 4u);
}

TEST_F(ExecSemanticsTest, InListWithNullSemantics) {
  // 10 IN (10, NULL) -> true; 20 IN (10, NULL) -> unknown (not emitted);
  // NOT IN with NULL in the list never matches.
  QueryResult r = MustExecute(
      &engine_, "SELECT id FROM t WHERE v IN (10, NULL)");
  EXPECT_EQ(RowsToString(r), "(1)");
  r = MustExecute(&engine_, "SELECT id FROM t WHERE v NOT IN (10, NULL)");
  EXPECT_EQ(r.rowset->rows().size(), 0u);
}

TEST_F(ExecSemanticsTest, StringConcatenationAndFunctions) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT UPPER(s) + '!' , LEN(s) FROM t WHERE id = 1");
  EXPECT_EQ(RowsToString(r), "(ABC!, 3)");
}

TEST_F(ExecSemanticsTest, OrderByNullsFirstAscending) {
  QueryResult r = MustExecute(&engine_, "SELECT id FROM t ORDER BY v, id");
  EXPECT_EQ(RowsToString(r), "(2)(4)(1)(3)");
  r = MustExecute(&engine_, "SELECT id FROM t ORDER BY v DESC, id");
  EXPECT_EQ(RowsToString(r), "(3)(1)(2)(4)");
}

}  // namespace
}  // namespace dhqp
