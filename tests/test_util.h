#ifndef DHQP_TESTS_TEST_UTIL_H_
#define DHQP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"
#include "src/net/fault.h"
#include "src/net/network.h"

namespace dhqp {

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    ::dhqp::Status _st = (expr);                            \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    ::dhqp::Status _st = (expr);                            \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                      \
  DHQP_ASSIGN_OR_RETURN_IMPL(                                \
      DHQP_ASSIGN_OR_RETURN_CONCAT(_assert_or_, __LINE__), lhs, expr)

/// Runs a query and asserts success, returning the result.
inline QueryResult MustExecute(Engine* engine, const std::string& sql,
                               const std::map<std::string, Value>& params = {}) {
  auto result = engine->Execute(sql, params);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  if (!result.ok()) return QueryResult{};
  return std::move(result).value();
}

/// Renders result rows as "(a, b)(c, d)" for compact expectations.
inline std::string RowsToString(const QueryResult& result) {
  if (result.rowset == nullptr) return "";
  std::string out;
  for (const Row& row : result.rowset->rows()) {
    out += RowToString(row);
  }
  return out;
}

/// Single source of determinism for the fault/chaos suites: folds a suite
/// tag and a schedule index into one 64-bit seed (splitmix-style finalizer),
/// so every schedule derives all of its randomness — fault windows, drop
/// probabilities, retry budgets — from (tag, index) via common/rng.h's Rng.
/// Replaying the same pair reproduces the same schedule bit-for-bit.
inline uint64_t ChaosSeed(uint64_t suite_tag, uint64_t index) {
  uint64_t z = suite_tag * 0x9e3779b97f4a7c15ULL + index + 0x853c49e6748fea9bULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A remote engine attached to a host through a traffic-counting link.
/// The link carries an (initially inert) fault injector so tests can script
/// failures without re-wiring the topology.
struct RemoteServer {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<net::FaultInjector> injector;
};

/// Creates `name` as a linked server on `host`, backed by a fresh Engine
/// reachable through a counting (non-delaying) link.
inline RemoteServer AttachRemoteEngine(
    Engine* host, const std::string& name,
    ProviderCapabilities caps = SqlServerCapabilities()) {
  RemoteServer server;
  EngineOptions options;
  options.name = name;
  server.engine = std::make_unique<Engine>(options);
  server.link = std::make_unique<net::Link>(name);
  server.injector = std::make_unique<net::FaultInjector>();
  server.link->set_fault_injector(server.injector.get());
  auto inner =
      std::make_shared<EngineDataSource>(server.engine.get(), std::move(caps));
  auto linked = std::make_shared<LinkedDataSource>(inner, server.link.get());
  EXPECT_OK(host->AddLinkedServer(name, linked));
  return server;
}

/// Counts physical operators of a kind in a plan tree.
inline int CountOps(const PhysicalOpPtr& plan, PhysicalOpKind kind) {
  if (plan == nullptr) return 0;
  int n = plan->kind == kind ? 1 : 0;
  for (const auto& child : plan->children) n += CountOps(child, kind);
  return n;
}

}  // namespace dhqp

#endif  // DHQP_TESTS_TEST_UTIL_H_
