// Constraint property framework unit tests (§4.1.5): domain extraction from
// predicates, contradiction detection, startup-predicate synthesis.

#include <gtest/gtest.h>

#include "src/optimizer/constraint.h"

namespace dhqp {
namespace {

ScalarExprPtr Col(int id) {
  return MakeColumn(id, DataType::kInt64, "c" + std::to_string(id));
}
ScalarExprPtr Lit(int64_t v) { return MakeLiteral(Value::Int64(v)); }

TEST(ConstraintTest, ComparisonDomains) {
  auto pred = MakeComparison(">", Col(1), Lit(50));
  auto domains = ExtractPredicateDomains(pred);
  ASSERT_EQ(domains.count(1), 1u);
  EXPECT_FALSE(domains[1].Contains(Value::Int64(50)));
  EXPECT_TRUE(domains[1].Contains(Value::Int64(51)));
}

TEST(ConstraintTest, ReversedOperandOrder) {
  // 50 < c1 is the same as c1 > 50.
  auto pred = MakeComparison("<", Lit(50), Col(1));
  auto domains = ExtractPredicateDomains(pred);
  ASSERT_EQ(domains.count(1), 1u);
  EXPECT_TRUE(domains[1].Contains(Value::Int64(51)));
  EXPECT_FALSE(domains[1].Contains(Value::Int64(49)));
}

TEST(ConstraintTest, AndIntersectsOrUnions) {
  auto range = MakeAnd(MakeComparison(">=", Col(1), Lit(10)),
                       MakeComparison("<=", Col(1), Lit(20)));
  auto domains = ExtractPredicateDomains(range);
  EXPECT_TRUE(domains[1].Contains(Value::Int64(15)));
  EXPECT_FALSE(domains[1].Contains(Value::Int64(25)));

  auto either = MakeOr(MakeComparison("=", Col(1), Lit(1)),
                       MakeComparison("=", Col(1), Lit(5)));
  domains = ExtractPredicateDomains(either);
  EXPECT_TRUE(domains[1].Contains(Value::Int64(5)));
  EXPECT_FALSE(domains[1].Contains(Value::Int64(3)));
}

TEST(ConstraintTest, OrWithUnconstrainedSideDropsRestriction) {
  // c1 = 1 OR c2 = 2 restricts neither column individually.
  auto pred = MakeOr(MakeComparison("=", Col(1), Lit(1)),
                     MakeComparison("=", Col(2), Lit(2)));
  auto domains = ExtractPredicateDomains(pred);
  EXPECT_TRUE(domains.empty());
}

TEST(ConstraintTest, ParamsImposeNothingStatically) {
  auto pred = MakeComparison("=", Col(1), MakeParam("@p", DataType::kInt64));
  EXPECT_TRUE(ExtractPredicateDomains(pred).empty());
}

TEST(ConstraintTest, ContradictionDetection) {
  std::map<int, IntervalSet> domains;
  domains[1] = IntervalSet::FromComparison(">", Value::Int64(50));
  IntersectDomains(&domains,
                   ExtractPredicateDomains(MakeComparison("=", Col(1), Lit(20))));
  EXPECT_TRUE(HasContradiction(domains));
}

TEST(ConstraintTest, StartupPredicateEquality) {
  // Paper example: domain (50, +inf), predicate c1 = @p yields @p > 50.
  std::map<int, IntervalSet> domains;
  domains[1] = IntervalSet::FromComparison(">", Value::Int64(50));
  auto conjunct = MakeComparison("=", Col(1), MakeParam("@customerId",
                                                        DataType::kInt64));
  ScalarExprPtr startup = BuildStartupPredicate(conjunct, domains);
  ASSERT_NE(startup, nullptr);
  EXPECT_TRUE(startup->IsColumnFree());
  EXPECT_EQ(startup->ToString(), "(@customerId > 50)");
}

TEST(ConstraintTest, StartupPredicateRangeDomain) {
  std::map<int, IntervalSet> domains;
  domains[1] = IntervalSet::Range(Bound{Value::Int64(100), true},
                                  Bound{Value::Int64(199), true});
  auto eq = MakeComparison("=", Col(1), MakeParam("@p", DataType::kInt64));
  ScalarExprPtr startup = BuildStartupPredicate(eq, domains);
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->ToString(), "((@p >= 100) AND (@p <= 199))");

  // Inequalities compare against the domain's extremes.
  auto lt = MakeComparison("<", Col(1), MakeParam("@p", DataType::kInt64));
  startup = BuildStartupPredicate(lt, domains);
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->ToString(), "(@p > 100)");

  auto ge = MakeComparison(">=", Col(1), MakeParam("@p", DataType::kInt64));
  startup = BuildStartupPredicate(ge, domains);
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->ToString(), "(@p <= 199)");
}

TEST(ConstraintTest, StartupPredicateUnboundedDomainSideIsNull) {
  std::map<int, IntervalSet> domains;
  domains[1] = IntervalSet::FromComparison(">", Value::Int64(50));
  // c1 < @p over (50, +inf): can always match for large @p... prunable only
  // if @p <= 51; conservative rule: @p > 50.
  auto lt = MakeComparison("<", Col(1), MakeParam("@p", DataType::kInt64));
  ScalarExprPtr startup = BuildStartupPredicate(lt, domains);
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->ToString(), "(@p > 50)");
  // c1 > @p over (50, +inf) cannot prune (unbounded above).
  auto gt = MakeComparison(">", Col(1), MakeParam("@p", DataType::kInt64));
  EXPECT_EQ(BuildStartupPredicate(gt, domains), nullptr);
}

TEST(ConstraintTest, PointDomainBecomesEquality) {
  auto pred = IntervalSetToPredicate(MakeParam("@p", DataType::kInt64),
                                     IntervalSet::Point(Value::Int64(7)));
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->ToString(), "(@p = 7)");
}

TEST(ConstraintTest, DisjointDomainBecomesOr) {
  IntervalSet set = IntervalSet::Point(Value::Int64(1))
                        .Union(IntervalSet::Point(Value::Int64(5)));
  auto pred =
      IntervalSetToPredicate(MakeParam("@p", DataType::kInt64), set);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->ToString(), "((@p = 1) OR (@p = 5))");
}

}  // namespace
}  // namespace dhqp
