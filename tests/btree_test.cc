// B+-tree unit and property tests: ordering, duplicates, range scans,
// prefix matching, deletion, structural invariants.

#include <algorithm>
#include <gtest/gtest.h>
#include <map>

#include "src/common/rng.h"
#include "src/storage/btree.h"

namespace dhqp {
namespace {

IndexKey K(int64_t a) { return {Value::Int64(a)}; }
IndexKey K2(int64_t a, int64_t b) { return {Value::Int64(a), Value::Int64(b)}; }

TEST(BTreeTest, InsertAndScanSorted) {
  BTree tree(8);
  for (int i = 99; i >= 0; --i) tree.Insert(K(i), i * 10);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<int64_t> ids;
  tree.Scan(nullptr, true, nullptr, true, &ids);
  ASSERT_EQ(ids.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i * 10);
}

TEST(BTreeTest, RangeBounds) {
  BTree tree(8);
  for (int i = 0; i < 50; ++i) tree.Insert(K(i), i);
  std::vector<int64_t> ids;
  IndexKey lo = K(10), hi = K(20);
  tree.Scan(&lo, true, &hi, false, &ids);
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_EQ(ids.front(), 10);
  EXPECT_EQ(ids.back(), 19);

  ids.clear();
  tree.Scan(&lo, false, &hi, true, &ids);
  EXPECT_EQ(ids.front(), 11);
  EXPECT_EQ(ids.back(), 20);
}

TEST(BTreeTest, DuplicatesSpanningLeaves) {
  // Small order forces duplicate runs across several leaves; scans must
  // find the leftmost occurrence (regression: FindLeaf used to branch right
  // of equal separators).
  BTree tree(4);
  for (int i = 0; i < 60; ++i) tree.Insert(K(i % 3), i);
  std::vector<int64_t> ids;
  IndexKey key = K(1);
  tree.Scan(&key, true, &key, true, &ids);
  EXPECT_EQ(ids.size(), 20u);
  for (int64_t id : ids) EXPECT_EQ(id % 3, 1);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, CompositeKeyPrefixScan) {
  BTree tree(8);
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) tree.Insert(K2(a, b), a * 100 + b);
  }
  // Prefix [4] matches all (4, *) entries.
  std::vector<int64_t> ids;
  IndexKey prefix = K(4);
  tree.Scan(&prefix, true, &prefix, true, &ids);
  ASSERT_EQ(ids.size(), 10u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], 400 + static_cast<int64_t>(i));
  }
  // Prefix + range on the second column.
  ids.clear();
  IndexKey lo = K2(4, 3), hi = K2(4, 6);
  tree.Scan(&lo, true, &hi, true, &ids);
  EXPECT_EQ(ids.size(), 4u);
}

TEST(BTreeTest, EraseAndContains) {
  BTree tree(4);
  for (int i = 0; i < 30; ++i) tree.Insert(K(i), i);
  EXPECT_TRUE(tree.Contains(K(17)));
  EXPECT_TRUE(tree.Erase(K(17), 17));
  EXPECT_FALSE(tree.Contains(K(17)));
  EXPECT_FALSE(tree.Erase(K(17), 17));  // Already gone.
  EXPECT_EQ(tree.size(), 29u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, MixedTypeKeys) {
  BTree tree(8);
  tree.Insert({Value::String("beta")}, 1);
  tree.Insert({Value::String("alpha")}, 2);
  tree.Insert({Value::String("gamma")}, 3);
  std::vector<std::pair<IndexKey, int64_t>> entries;
  tree.ScanEntries(nullptr, true, nullptr, true, &entries);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first[0].string_value(), "alpha");
  EXPECT_EQ(entries[2].first[0].string_value(), "gamma");
}

// Property test against a reference multimap, across random operation mixes
// and tree orders.
class BTreePropertyTest
    : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimap) {
  auto [order, seed] = GetParam();
  BTree tree(order);
  std::multimap<int64_t, int64_t> reference;
  Rng rng(seed);
  for (int step = 0; step < 3000; ++step) {
    int64_t key = rng.Uniform(0, 80);
    if (rng.Uniform(0, 3) != 0 || reference.empty()) {
      int64_t id = step;
      tree.Insert(K(key), id);
      reference.emplace(key, id);
    } else {
      auto it = reference.find(key);
      bool expect_found = it != reference.end();
      bool found = expect_found && tree.Erase(K(key), it->second);
      if (expect_found) {
        EXPECT_TRUE(found) << "erase failed for key " << key;
        reference.erase(it);
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());
  // Full scan matches the reference ordering by key.
  std::vector<std::pair<IndexKey, int64_t>> entries;
  tree.ScanEntries(nullptr, true, nullptr, true, &entries);
  ASSERT_EQ(entries.size(), reference.size());
  auto ref_it = reference.begin();
  for (const auto& [key, id] : entries) {
    EXPECT_EQ(key[0].int64_value(), ref_it->first);
    ++ref_it;
  }
  // Random range scans match brute-force counting.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t a = rng.Uniform(0, 80), b = rng.Uniform(0, 80);
    if (a > b) std::swap(a, b);
    std::vector<int64_t> ids;
    IndexKey lo = K(a), hi = K(b);
    tree.Scan(&lo, true, &hi, true, &ids);
    size_t expected = 0;
    for (const auto& [k, id] : reference) {
      if (k >= a && k <= b) ++expected;
    }
    EXPECT_EQ(ids.size(), expected) << "range [" << a << "," << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSeeds, BTreePropertyTest,
    ::testing::Values(std::make_pair(4, 1ull), std::make_pair(4, 2ull),
                      std::make_pair(8, 3ull), std::make_pair(16, 4ull),
                      std::make_pair(64, 5ull), std::make_pair(5, 6ull)));

}  // namespace
}  // namespace dhqp
