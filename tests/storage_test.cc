// Storage engine unit tests: constraints, indexes, deletes, bookmarks,
// transactions, provider surface.

#include <gtest/gtest.h>

#include "src/storage/storage_engine.h"

namespace dhqp {
namespace {

Schema TwoCol() {
  Schema schema;
  schema.AddColumn(ColumnDef{"id", DataType::kInt64, false});
  schema.AddColumn(ColumnDef{"name", DataType::kString, true});
  return schema;
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t("t", TwoCol());
  EXPECT_FALSE(t.Insert({Value::Int64(1)}).ok());  // Arity.
  EXPECT_FALSE(t.Insert({Value::Null(), Value::String("x")}).ok());  // NOT NULL.
  // Coercible types are cast.
  ASSERT_TRUE(t.Insert({Value::String("7"), Value::String("x")}).ok());
  EXPECT_EQ(t.GetRow(0)->at(0).int64_value(), 7);
  // Non-coercible rejected.
  EXPECT_FALSE(t.Insert({Value::String("abc"), Value::String("x")}).ok());
}

TEST(TableTest, CheckConstraintEnforced) {
  Table t("t", TwoCol());
  CheckConstraint check{"id", IntervalSet::FromComparison(">", Value::Int64(0)),
                        "id > 0"};
  ASSERT_TRUE(t.AddCheckConstraint(check).ok());
  EXPECT_TRUE(t.Insert({Value::Int64(5), Value::Null()}).ok());
  auto bad = t.Insert({Value::Int64(-1), Value::Null()});
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
}

TEST(TableTest, AddCheckRejectsExistingViolations) {
  Table t("t", TwoCol());
  ASSERT_TRUE(t.Insert({Value::Int64(-5), Value::Null()}).ok());
  CheckConstraint check{"id", IntervalSet::FromComparison(">", Value::Int64(0)),
                        "id > 0"};
  EXPECT_FALSE(t.AddCheckConstraint(check).ok());
}

TEST(TableTest, UniqueIndexRejectsDuplicates) {
  Table t("t", TwoCol());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, /*unique=*/true).ok());
  ASSERT_TRUE(t.Insert({Value::Int64(1), Value::String("a")}).ok());
  auto dup = t.Insert({Value::Int64(1), Value::String("b")});
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
  // Non-unique index tolerates duplicates.
  ASSERT_TRUE(t.CreateIndex("byname", {"name"}, /*unique=*/false).ok());
  EXPECT_TRUE(t.Insert({Value::Int64(2), Value::String("a")}).ok());
}

TEST(TableTest, DeleteMaintainsIndexes) {
  Table t("t", TwoCol());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  auto id1 = t.Insert({Value::Int64(1), Value::String("a")});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(t.Delete(*id1).ok());
  EXPECT_EQ(t.live_row_count(), 0u);
  EXPECT_EQ(t.GetRow(*id1), nullptr);
  // The key is free again.
  EXPECT_TRUE(t.Insert({Value::Int64(1), Value::String("c")}).ok());
  EXPECT_FALSE(t.Delete(*id1).ok());  // Double delete.
}

TEST(StorageEngineTest, TransactionUndoOnAbort) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(engine.Begin(1).ok());
  ASSERT_TRUE(engine.InsertRow(1, "t", {Value::Int64(1), Value::Null()}).ok());
  ASSERT_TRUE(engine.InsertRow(1, "t", {Value::Int64(2), Value::Null()}).ok());
  Table* t = engine.GetTable("t").value();
  EXPECT_EQ(t->live_row_count(), 2u);
  ASSERT_TRUE(engine.Abort(1).ok());
  EXPECT_EQ(t->live_row_count(), 0u);
}

TEST(StorageEngineTest, TransactionCommitKeepsRows) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(engine.Begin(2).ok());
  ASSERT_TRUE(engine.InsertRow(2, "t", {Value::Int64(1), Value::Null()}).ok());
  ASSERT_TRUE(engine.Prepare(2).ok());
  ASSERT_TRUE(engine.Commit(2).ok());
  EXPECT_EQ(engine.GetTable("t").value()->live_row_count(), 1u);
}

TEST(StorageSessionTest, ProviderSurface) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", TwoCol()).ok());
  Table* t = engine.GetTable("t").value();
  ASSERT_TRUE(t->CreateIndex("pk", {"id"}, true).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t->Insert({Value::Int64(i), Value::String("n" + std::to_string(i))})
            .ok());
  }
  StorageSession session(&engine);

  // IOpenRowset.
  auto rowset = session.OpenRowset("t");
  ASSERT_TRUE(rowset.ok());
  auto rows = DrainRowset(rowset->get());
  EXPECT_EQ(rows->size(), 10u);

  // IDBSchemaRowset.
  auto tables = session.ListTables();
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ((*tables)[0].indexes.size(), 1u);
  EXPECT_EQ((*tables)[0].cardinality, 10);

  // IRowsetIndex: range [3, 6).
  IndexRange range;
  range.lo = Value::Int64(3);
  range.hi = Value::Int64(6);
  range.hi_inclusive = false;
  auto ranged = session.OpenIndexRange("t", "pk", range);
  ASSERT_TRUE(ranged.ok());
  EXPECT_EQ(DrainRowset(ranged->get())->size(), 3u);

  // Index keys + IRowsetLocate bookmarks.
  auto keys = session.OpenIndexKeys("t", "pk", range);
  ASSERT_TRUE(keys.ok());
  auto key_rows = DrainRowset(keys->get());
  ASSERT_EQ(key_rows->size(), 3u);
  const Value& bookmark = (*key_rows)[0].back();
  auto fetched = session.FetchByBookmark("t", bookmark);
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(fetched->has_value());
  EXPECT_EQ((**fetched)[0].int64_value(), 3);

  // Histogram rowset.
  auto stats = session.GetStatistics("t", "id");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 10);

  // Command surface refused (index provider category, §3.3).
  EXPECT_FALSE(session.CreateCommand().ok());
}

TEST(StorageSessionTest, NotFoundErrors) {
  StorageEngine engine;
  StorageSession session(&engine);
  EXPECT_EQ(session.OpenRowset("missing").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(engine.CreateTable("t", TwoCol()).ok());
  IndexRange range;
  EXPECT_EQ(session.OpenIndexRange("t", "noidx", range).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(
      session.FetchByBookmark("t", Value::String("bad")).ok());
}

}  // namespace
}  // namespace dhqp
