// Wait-statistics suite: the waits:: taxonomy end to end. Unit coverage of
// RecordWait's three sinks (global histograms, per-query tally, per-operator
// tally) and the enable switch; the acceptance scenario — seeded chaos at
// dop=4 with prefetch makes dm_os_wait_stats report nonzero RETRY_BACKOFF /
// EXCHANGE_QUEUE_* / PREFETCH_QUEUE; EXPLAIN ANALYZE wait attribution to the
// correct operators; the distributed-request view joining coordinator
// executions to member work by activity id; named worker-thread tracks in
// the tracer; and the differential wait-sanity cross over
// dop x exec_batch_rows.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/activity.h"
#include "src/common/trace.h"
#include "src/common/waits.h"
#include "tests/differential_harness.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

// ---------------------------------------------------------------------------
// Unit: RecordWait charges every sink; the switch and reset work.
// ---------------------------------------------------------------------------

int64_t GlobalCount(const std::string& type) {
  for (const waits::WaitStatRow& row : waits::GlobalSnapshot()) {
    if (row.wait_type == type) return row.waiting_tasks_count;
  }
  ADD_FAILURE() << "wait type " << type << " missing from GlobalSnapshot";
  return -1;
}

TEST(WaitsUnitTest, RecordWaitChargesAllThreeSinks) {
  waits::ResetGlobal();
  waits::WaitTally query;
  waits::WaitTally op;
  {
    waits::ScopedQueryTally scope(&query);
    waits::RecordWait(waits::WaitType::kLinkSend, 1000, &op);
    waits::RecordWait(waits::WaitType::kLinkSend, 500);  // No operator.
  }
  EXPECT_EQ(query.CountFor(waits::WaitType::kLinkSend), 2);
  EXPECT_EQ(op.CountFor(waits::WaitType::kLinkSend), 1);
  EXPECT_GE(query.NsFor(waits::WaitType::kLinkSend),
            op.NsFor(waits::WaitType::kLinkSend));
  EXPECT_EQ(GlobalCount("LINK_SEND"), 2);

  // Outside the scope the thread has no query tally; only global advances.
  waits::RecordWait(waits::WaitType::kLinkSend, 100);
  EXPECT_EQ(query.CountFor(waits::WaitType::kLinkSend), 2);
  EXPECT_EQ(GlobalCount("LINK_SEND"), 3);
}

TEST(WaitsUnitTest, ZeroDurationWaitsStillCount) {
  waits::ResetGlobal();
  waits::WaitTally query;
  {
    waits::ScopedQueryTally scope(&query);
    // An unenforced-link backoff takes no wall time but must be visible:
    // the *event count* is what a retry-storm diagnosis keys on.
    waits::RecordWait(waits::WaitType::kRetryBackoff, 0);
  }
  EXPECT_EQ(query.CountFor(waits::WaitType::kRetryBackoff), 1);
  EXPECT_EQ(query.NsFor(waits::WaitType::kRetryBackoff), 0);
  EXPECT_EQ(GlobalCount("RETRY_BACKOFF"), 1);
}

TEST(WaitsUnitTest, DisabledRecordsNothing) {
  waits::ResetGlobal();
  waits::WaitTally query;
  waits::SetEnabled(false);
  {
    waits::ScopedQueryTally scope(&query);
    waits::RecordWait(waits::WaitType::kConcatQueue, 1234);
  }
  waits::SetEnabled(true);
  EXPECT_EQ(query.total_count(), 0);
  EXPECT_EQ(GlobalCount("CONCAT_QUEUE"), 0);
}

TEST(WaitsUnitTest, SnapshotAndTopType) {
  waits::WaitTally tally;
  tally.Add(waits::WaitType::kPrefetchQueue, 10);
  tally.Add(waits::WaitType::kLinkSend, 100000);
  tally.Add(waits::WaitType::kLinkSend, 100000);
  const waits::WaitTotals totals = waits::Snapshot(tally);
  EXPECT_EQ(totals.total_count(), 3);
  EXPECT_EQ(totals.count[static_cast<int>(waits::WaitType::kLinkSend)], 2);
  EXPECT_EQ(totals.TopType(), "LINK_SEND");
  EXPECT_EQ(waits::WaitTotals{}.TopType(), "");
}

TEST(WaitsUnitTest, GlobalSnapshotCoversWholeTaxonomyInOrder) {
  const std::vector<waits::WaitStatRow> rows = waits::GlobalSnapshot();
  ASSERT_EQ(rows.size(), static_cast<size_t>(waits::kNumWaitTypes));
  for (int i = 0; i < waits::kNumWaitTypes; ++i) {
    EXPECT_EQ(rows[static_cast<size_t>(i)].wait_type,
              waits::Name(static_cast<waits::WaitType>(i)));
    EXPECT_GE(rows[static_cast<size_t>(i)].max_wait_time_ns, 0);
  }
}

TEST(ActivityUnitTest, GenerateAdoptRestore) {
  EXPECT_TRUE(activity::Current().empty());
  const std::string id = activity::Generate("host");
  EXPECT_EQ(id.find("host#"), 0u);
  {
    activity::Scope outer(id);
    EXPECT_EQ(activity::Current(), id);
    {
      activity::Scope inner("other#7");
      EXPECT_EQ(activity::Current(), "other#7");
    }
    EXPECT_EQ(activity::Current(), id);
  }
  EXPECT_TRUE(activity::Current().empty());
  // Ids are unique per Generate call.
  EXPECT_NE(activity::Generate("host"), activity::Generate("host"));
}

// ---------------------------------------------------------------------------
// Integration fixture: local tables past the exchange break-even plus a
// remote member behind a faultable link.
// ---------------------------------------------------------------------------

constexpr int kBig1Rows = 8000;
constexpr int kRemoteRows = 2000;

void Fill(Engine* engine, const std::string& table, int rows, int cols) {
  for (int base = 0; base < rows; base += 1000) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    int end = std::min(base + 1000, rows);
    for (int i = base; i < end; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i);
      if (cols >= 2) sql += "," + std::to_string(i % 97);
      if (cols >= 3) sql += "," + std::to_string((i * 31) % 1009);
      sql += ")";
    }
    MustExecute(engine, sql);
  }
}

class WaitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(&host_, "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
    Fill(&host_, "big1", kBig1Rows, 3);
    MustExecute(remote_.engine.get(),
                "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
    Fill(remote_.engine.get(), "r", kRemoteRows, 2);
  }

  std::map<std::string, int64_t> WaitCountsViaDmv() {
    QueryResult result = MustExecute(
        &host_,
        "SELECT wait_type, waiting_tasks_count, wait_time_ns, "
        "max_wait_time_ns FROM sys..dm_os_wait_stats");
    std::map<std::string, int64_t> counts;
    EXPECT_EQ(result.rowset->rows().size(),
              static_cast<size_t>(waits::kNumWaitTypes));
    for (const Row& row : result.rowset->rows()) {
      counts[row[0].string_value()] = row[1].int64_value();
      // Sanity on every row: times are non-negative, the max never exceeds
      // the per-type total, and zero-count types report zero time.
      EXPECT_GE(row[2].int64_value(), 0) << row[0].string_value();
      EXPECT_LE(row[3].int64_value(), row[2].int64_value())
          << row[0].string_value();
      if (row[1].int64_value() == 0) {
        EXPECT_EQ(row[2].int64_value(), 0) << row[0].string_value();
      }
    }
    return counts;
  }

  Engine host_;
  RemoteServer remote_;
};

// ---------------------------------------------------------------------------
// Acceptance: seeded chaos at dop=4 with prefetch lights up the taxonomy.
// ---------------------------------------------------------------------------

TEST_F(WaitsTest, ChaosDop4ReportsWaitsInDmOsWaitStats) {
  waits::ResetGlobal();
  host_.options()->execution.dop = 4;
  host_.options()->execution.exec_batch_rows = 1024;
  host_.options()->execution.enable_remote_prefetch = true;
  // Make the prefetch queue the bottleneck: a depth-1 queue fed in small
  // batches forces a genuine producer/consumer handoff on (nearly) every
  // batch — the default 4x512 queue swallows the whole 2000-row stream
  // without either side ever blocking.
  host_.options()->execution.prefetch_queue_depth = 1;
  host_.options()->execution.remote_batch_rows = 64;

  // Seeded chaos: three isolated single-attempt transient faults. Each
  // faulted attempt retries into an un-faulted ordinal, so statements
  // succeed while the retry path (and its backoff accounting) runs.
  remote_.injector->Reset(ChaosSeed(/*suite_tag=*/16, /*index=*/1));
  remote_.injector->FailMessages(/*after=*/1, /*count=*/1);
  remote_.injector->FailMessages(/*after=*/3, /*count=*/1);
  remote_.injector->FailMessages(/*after=*/5, /*count=*/1);
  // Enforced latency spikes mid-stream stall the prefetch producer long
  // enough for the consumer to drain the queue and park in Pop().
  remote_.link->set_enforce_delays(true);
  remote_.injector->AddLatencySpike(/*after=*/7, /*count=*/3,
                                    /*extra_us=*/1500.0);

  // Remote leg (prefetch + link + retries).
  for (int i = 0; i < 2; ++i) {
    MustExecute(&host_, "SELECT a, e FROM rsrv.db.dbo.r WHERE e >= 0");
  }
  // Parallel local leg (exchange queues). Repeat a few times so both sides
  // of the queue observe pressure.
  Observation obs = Observe(&host_, "SELECT b, COUNT(*), SUM(c) FROM big1 "
                            "GROUP BY b", ExecMode{4, 1024});
  ASSERT_TRUE(obs.ok);
  ASSERT_GT(obs.exchange_ops, 0) << "dop=4 did not choose a parallel plan";
  for (int i = 0; i < 3; ++i) {
    MustExecute(&host_, "SELECT b, COUNT(*), SUM(c) FROM big1 GROUP BY b");
  }

  std::map<std::string, int64_t> counts = WaitCountsViaDmv();
  EXPECT_GT(counts["RETRY_BACKOFF"], 0);
  EXPECT_GT(counts["PREFETCH_QUEUE"], 0);
  EXPECT_GT(counts["LINK_SEND"], 0);
  EXPECT_GT(counts["EXCHANGE_QUEUE_PUSH"] + counts["EXCHANGE_QUEUE_POP"], 0);

  // The faults really happened (this is what drove RETRY_BACKOFF).
  EXPECT_GE(remote_.injector->faults_injected(), 1);

  // ResetGlobal clears the DMV, as the "clear" knob promises.
  waits::ResetGlobal();
  for (const auto& [type, count] : WaitCountsViaDmv()) {
    EXPECT_EQ(count, 0) << type;
  }
}

// Per-statement wait totals surface on the result and in the query store.
TEST_F(WaitsTest, QueryResultAndStoreCarryWaitTotals) {
  host_.options()->execution.enable_remote_prefetch = true;
  QueryResult r =
      MustExecute(&host_, "SELECT COUNT(*) FROM rsrv.db.dbo.r WHERE e >= 0");
  EXPECT_GT(r.wait_totals.total_count(), 0);
  EXPECT_GT(
      r.wait_totals.count[static_cast<int>(waits::WaitType::kLinkSend)], 0);
  EXPECT_FALSE(r.activity_id.empty());

  bool found = false;
  for (const sysview::ExecutionRecord& rec : host_.query_store()->Snapshot()) {
    if (rec.activity_id != r.activity_id) continue;
    found = true;
    EXPECT_EQ(rec.waits.total_count(), r.wait_totals.total_count());
  }
  EXPECT_TRUE(found) << "statement not recorded under its activity id";

  // The aggregate DMV rolls the same accounting up per fingerprint.
  QueryResult agg = MustExecute(
      &host_,
      "SELECT wait_count, total_wait_ns FROM sys..dm_exec_query_stats "
      "WHERE statement_type = 'select'");
  int64_t wait_count = 0;
  for (const Row& row : agg.rowset->rows()) {
    wait_count += row[0].int64_value();
    EXPECT_GE(row[1].int64_value(), 0);
  }
  EXPECT_GE(wait_count, r.wait_totals.total_count());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE attributes waits to the operators that incurred them.
// ---------------------------------------------------------------------------

TEST_F(WaitsTest, ExplainAnalyzeAttributesWaitsToRemoteOperators) {
  host_.options()->execution.enable_remote_prefetch = true;
  QueryResult r = MustExecute(
      &host_, "EXPLAIN ANALYZE SELECT a, e FROM rsrv.db.dbo.r WHERE e >= 0");
  ASSERT_NE(r.rowset, nullptr);
  bool remote_line_has_waits = false;
  for (const Row& row : r.rowset->rows()) {
    const std::string& line = row[0].string_value();
    const bool remote = line.find("Remote") != std::string::npos;
    if (remote && line.find("wait=") != std::string::npos) {
      remote_line_has_waits = true;
      // The remote leg's waits are link wire time and prefetch stalls —
      // never exchange-queue types (there is no exchange here).
      EXPECT_EQ(line.find("EXCHANGE_QUEUE"), std::string::npos) << line;
    }
    // Purely local operators must not be charged link waits.
    if (!remote) {
      EXPECT_EQ(line.find("LINK_SEND"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(remote_line_has_waits)
      << "no Remote* operator rendered a wait= annotation";
}

// Profile-tree wait attribution never exceeds what the query recorded.
TEST_F(WaitsTest, OperatorAttributionIsBoundedByQueryTotals) {
  host_.options()->execution.enable_remote_prefetch = true;
  host_.options()->execution.collect_operator_stats = true;
  QueryResult r = MustExecute(
      &host_,
      "SELECT big1.b, COUNT(*) FROM big1 JOIN rsrv.db.dbo.r rr "
      "ON big1.a = rr.a GROUP BY big1.b");
  ASSERT_NE(r.profile, nullptr);
  waits::WaitTotals tree;
  SumProfileWaits(*r.profile, &tree);
  for (int i = 0; i < waits::kNumWaitTypes; ++i) {
    EXPECT_LE(tree.count[i], r.wait_totals.count[i])
        << waits::Name(static_cast<waits::WaitType>(i));
  }
  // dm_exec_operator_stats exposes the same per-operator tallies.
  QueryResult ops = MustExecute(
      &host_,
      "SELECT operator, waits, wait_ns FROM sys..dm_exec_operator_stats");
  int64_t dmv_waits = 0;
  for (const Row& row : ops.rowset->rows()) {
    EXPECT_GE(row[2].int64_value(), 0);
    dmv_waits += row[1].int64_value();
  }
  EXPECT_GE(dmv_waits, tree.total_count());
}

// ---------------------------------------------------------------------------
// Cross-engine correlation: dm_exec_distributed_requests.
// ---------------------------------------------------------------------------

TEST_F(WaitsTest, DistributedRequestsJoinCoordinatorToEveryMemberRecord) {
  host_.query_store()->Clear();
  remote_.engine->query_store()->Clear();

  std::vector<std::string> coordinator_ids;
  for (int i = 0; i < 3; ++i) {
    QueryResult r = MustExecute(
        &host_, "SELECT COUNT(*) FROM rsrv.db.dbo.r WHERE e >= " +
                    std::to_string(i));
    ASSERT_FALSE(r.activity_id.empty());
    coordinator_ids.push_back(r.activity_id);
  }

  // Every record the member engine kept was made on the coordinator's
  // behalf here, so each must carry one of the coordinator's activity ids.
  const std::vector<sysview::ExecutionRecord> member_records =
      remote_.engine->query_store()->Snapshot();
  ASSERT_FALSE(member_records.empty())
      << "member engine recorded no work for the distributed statements";
  for (const sysview::ExecutionRecord& rec : member_records) {
    EXPECT_NE(std::find(coordinator_ids.begin(), coordinator_ids.end(),
                        rec.activity_id),
              coordinator_ids.end())
        << "member record '" << rec.statement
        << "' has unmatched activity id '" << rec.activity_id << "'";
  }

  // The DMV join: every member record appears as a "member" row under its
  // coordinator's activity id, and every coordinator statement has a
  // "coordinator" row.
  QueryResult view = MustExecute(
      &host_,
      "SELECT activity_id, server, role, execution_id FROM "
      "sys..dm_exec_distributed_requests");
  std::set<std::string> coordinator_rows;
  std::set<int64_t> member_rows;
  for (const Row& row : view.rowset->rows()) {
    if (row[2].string_value() == "coordinator") {
      EXPECT_EQ(row[1].string_value(), "(local)");
      coordinator_rows.insert(row[0].string_value());
    } else {
      EXPECT_EQ(row[2].string_value(), "member");
      EXPECT_EQ(row[1].string_value(), "rsrv");
      member_rows.insert(row[3].int64_value());
    }
  }
  for (const std::string& id : coordinator_ids) {
    EXPECT_EQ(coordinator_rows.count(id), 1u) << id;
  }
  for (const sysview::ExecutionRecord& rec : member_records) {
    EXPECT_EQ(member_rows.count(rec.execution_id), 1u)
        << "member execution " << rec.execution_id << " ('" << rec.statement
        << "') missing from dm_exec_distributed_requests";
  }
}

// A local-only statement is still correlated (it coordinates itself) but
// produces no member rows.
TEST_F(WaitsTest, LocalStatementsHaveNoMemberRows) {
  host_.query_store()->Clear();
  remote_.engine->query_store()->Clear();
  QueryResult r = MustExecute(&host_, "SELECT COUNT(*) FROM big1");
  ASSERT_FALSE(r.activity_id.empty());
  QueryResult view = MustExecute(
      &host_,
      "SELECT activity_id, role FROM sys..dm_exec_distributed_requests");
  bool saw_coordinator = false;
  for (const Row& row : view.rowset->rows()) {
    EXPECT_EQ(row[1].string_value(), "coordinator");
    if (row[0].string_value() == r.activity_id) saw_coordinator = true;
  }
  EXPECT_TRUE(saw_coordinator);
}

// ---------------------------------------------------------------------------
// Worker threads name their trace tracks.
// ---------------------------------------------------------------------------

TEST_F(WaitsTest, WorkerThreadsNameTheirTraceTracks) {
  trace::Tracer::Global().Enable();
  host_.options()->execution.enable_remote_prefetch = true;
  MustExecute(&host_, "SELECT a, e FROM rsrv.db.dbo.r WHERE e >= 0");
  Observation obs = Observe(&host_, "SELECT b, COUNT(*) FROM big1 GROUP BY b",
                            ExecMode{4, 1024});
  ASSERT_TRUE(obs.ok);
  ASSERT_GT(obs.exchange_ops, 0);
  trace::Tracer::Global().Disable();

  std::set<std::string> names;
  for (const auto& [tid, name] : trace::Tracer::ThreadNames()) {
    EXPECT_GT(tid, 0u);
    names.insert(name);
  }
  EXPECT_EQ(names.count("prefetch"), 1u);
  EXPECT_EQ(names.count("exchange.worker0"), 1u);
  // Chrome trace dumps carry the names as thread_name metadata events.
  const std::string json = trace::Tracer::Global().DumpChromeJson();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("exchange.worker0"), std::string::npos);
  trace::Tracer::Global().Clear();
}

// ---------------------------------------------------------------------------
// Differential wait sanity: results and warnings are mode-invariant while
// the wait accounting stays internally consistent in every mode.
// ---------------------------------------------------------------------------

TEST_F(WaitsTest, WaitAccountingIsSaneAcrossDopAndBatchModes) {
  const ExecMode modes[] = {{1, 0}, {1, 1024}, {4, 0}, {4, 1024}};
  const char* corpus[] = {
      "SELECT b, COUNT(*), SUM(c) FROM big1 GROUP BY b",
      "SELECT big1.b, COUNT(*) FROM big1 JOIN rsrv.db.dbo.r rr "
      "ON big1.a = rr.a GROUP BY big1.b",
  };
  for (const char* sql : corpus) {
    Observation base = Observe(&host_, sql, ExecMode{1, 0});
    ExpectWaitsSane(base, sql, "dop=1 exec_batch_rows=0");
    for (const ExecMode& mode : modes) {
      if (mode.dop == 1 && mode.batch_rows == 0) continue;
      Observation obs = Observe(&host_, sql, mode);
      ExpectEquivalent(base, obs, sql, mode.Label(),
                       /*compare_remote_rows=*/false);
      ExpectWaitsSane(obs, sql, mode.Label());
    }
  }
}

}  // namespace
}  // namespace dhqp
