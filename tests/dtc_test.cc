// Distributed transaction coordinator (2PC) tests, including injected
// prepare/commit failures (the MS DTC role of §2).

#include "src/txn/dtc.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

class DtcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      auto engine = std::make_unique<StorageEngine>();
      Schema schema;
      schema.AddColumn(ColumnDef{"id", DataType::kInt64, false});
      schema.AddColumn(ColumnDef{"v", DataType::kString, true});
      ASSERT_TRUE(engine->CreateTable("t", schema).ok());
      sessions_.push_back(std::make_unique<StorageSession>(engine.get()));
      engines_.push_back(std::move(engine));
    }
  }

  int64_t CountRows(int i) {
    Table* t = engines_[static_cast<size_t>(i)]->GetTable("t").value();
    return static_cast<int64_t>(t->live_row_count());
  }

  Status InsertOn(int i, int64_t id) {
    return sessions_[static_cast<size_t>(i)]
        ->InsertRows("t", {{Value::Int64(id), Value::String("x")}})
        .status();
  }

  std::vector<std::unique_ptr<StorageEngine>> engines_;
  std::vector<std::unique_ptr<StorageSession>> sessions_;
  TransactionCoordinator dtc_;
};

TEST_F(DtcTest, CommitAppliesEverywhere) {
  int64_t txn = dtc_.Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(dtc_.Enlist(txn, sessions_[static_cast<size_t>(i)].get(),
                          "p" + std::to_string(i)));
    ASSERT_OK(InsertOn(i, 1));
  }
  ASSERT_OK(dtc_.Commit(txn));
  EXPECT_EQ(dtc_.Outcome(txn), TxnOutcome::kCommitted);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(CountRows(i), 1);
}

TEST_F(DtcTest, AbortUndoesEverywhere) {
  int64_t txn = dtc_.Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(dtc_.Enlist(txn, sessions_[static_cast<size_t>(i)].get(),
                          "p" + std::to_string(i)));
    ASSERT_OK(InsertOn(i, 2));
  }
  ASSERT_OK(dtc_.Abort(txn));
  EXPECT_EQ(dtc_.Outcome(txn), TxnOutcome::kAborted);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(CountRows(i), 0);
}

TEST_F(DtcTest, PrepareFailureAbortsAll) {
  engines_[1]->failure_injection().fail_on_prepare = true;
  int64_t txn = dtc_.Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(dtc_.Enlist(txn, sessions_[static_cast<size_t>(i)].get(),
                          "p" + std::to_string(i)));
    ASSERT_OK(InsertOn(i, 3));
  }
  Status st = dtc_.Commit(txn);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTransactionAborted);
  EXPECT_EQ(dtc_.Outcome(txn), TxnOutcome::kAborted);
  // Atomicity: no participant kept its write.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(CountRows(i), 0) << "participant " << i;
}

TEST_F(DtcTest, CommitPhaseFailureRetries) {
  // Votes are unanimous; participant 2 then fails during the commit phase.
  // The decision is already logged as committed; the coordinator retries.
  engines_[2]->failure_injection().fail_on_commit = true;
  int64_t txn = dtc_.Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(dtc_.Enlist(txn, sessions_[static_cast<size_t>(i)].get(),
                          "p" + std::to_string(i)));
    ASSERT_OK(InsertOn(i, 4));
  }
  Status st = dtc_.Commit(txn);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(dtc_.Outcome(txn), TxnOutcome::kCommitted);  // Decision stands.
  EXPECT_GT(dtc_.commit_retries(), 0);
  // Healthy participants applied their writes.
  EXPECT_EQ(CountRows(0), 1);
  EXPECT_EQ(CountRows(1), 1);
}

TEST_F(DtcTest, CannotAbortAfterCommit) {
  int64_t txn = dtc_.Begin();
  ASSERT_OK(dtc_.Enlist(txn, sessions_[0].get(), "p0"));
  ASSERT_OK(InsertOn(0, 5));
  ASSERT_OK(dtc_.Commit(txn));
  EXPECT_FALSE(dtc_.Abort(txn).ok());
}

TEST_F(DtcTest, NonTransactionalProviderCannotEnlist) {
  // A session that rejects BeginTransaction cannot join (the DTC refuses to
  // span non-transactional sources).
  class NonTxnSession : public Session {
   public:
    Result<std::unique_ptr<Rowset>> OpenRowset(const std::string&) override {
      return Status::NotFound("none");
    }
    Result<std::vector<TableMetadata>> ListTables() override {
      return std::vector<TableMetadata>{};
    }
  };
  NonTxnSession session;
  int64_t txn = dtc_.Begin();
  Status st = dtc_.Enlist(txn, &session, "plain");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST_F(DtcTest, UndoRestoresDeletes) {
  // Deletes under an aborted transaction are restored from the saved image.
  ASSERT_OK(InsertOn(0, 10));
  int64_t txn = dtc_.Begin();
  ASSERT_OK(dtc_.Enlist(txn, sessions_[0].get(), "p0"));
  ASSERT_OK(engines_[0]->DeleteRow(txn, "t", 0));
  EXPECT_EQ(CountRows(0), 0);
  ASSERT_OK(dtc_.Abort(txn));
  EXPECT_EQ(CountRows(0), 1);
}

}  // namespace
}  // namespace dhqp
