// Histogram construction and cardinality estimation tests (§3.2.4).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/storage/histogram.h"
#include "src/storage/storage_engine.h"

namespace dhqp {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  Table* MakeTable(const std::vector<int64_t>& values) {
    Schema schema;
    schema.AddColumn(ColumnDef{"v", DataType::kInt64, true});
    Table* t = engine_.CreateTable("t" + std::to_string(counter_++), schema)
                   .value();
    for (int64_t v : values) {
      EXPECT_TRUE(t->Insert({Value::Int64(v)}).ok());
    }
    return t;
  }

  StorageEngine engine_;
  int counter_ = 0;
};

TEST_F(HistogramTest, SummaryCounts) {
  Table* t = MakeTable({1, 1, 2, 3, 3, 3, 9});
  auto stats = BuildColumnStatistics(*t, "v");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 7);
  EXPECT_EQ(stats->distinct_count, 4);
  EXPECT_EQ(stats->null_count, 0);
}

TEST_F(HistogramTest, NullsCounted) {
  Schema schema;
  schema.AddColumn(ColumnDef{"v", DataType::kInt64, true});
  Table* t = engine_.CreateTable("tn", schema).value();
  ASSERT_TRUE(t->Insert({Value::Int64(1)}).ok());
  ASSERT_TRUE(t->Insert({Value::Null()}).ok());
  ASSERT_TRUE(t->Insert({Value::Null()}).ok());
  auto stats = BuildColumnStatistics(*t, "v");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 2);
  EXPECT_EQ(stats->row_count, 3);
}

TEST_F(HistogramTest, EqualityEstimateOnUniform) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 100);
  Table* t = MakeTable(values);
  auto stats = BuildColumnStatistics(*t, "v", 32);
  ASSERT_TRUE(stats.ok());
  double est = stats->EstimateEquals(Value::Int64(37));
  EXPECT_NEAR(est, 10.0, 6.0);
  // A value outside the data estimates ~0.
  EXPECT_LE(stats->EstimateEquals(Value::Int64(5000)), 1.0);
}

TEST_F(HistogramTest, SkewedFrequenciesCaptured) {
  // Zipf-like: value 1 dominates. Boundary values carry exact counts, so
  // the estimate for the heavy hitter must be near-exact — the
  // order-of-magnitude improvement §3.2.4 claims over uniform assumptions.
  std::vector<int64_t> values;
  ZipfGenerator zipf(200, 1.2, 5);
  for (int i = 0; i < 5000; ++i) values.push_back(zipf.Next());
  Table* t = MakeTable(values);
  auto stats = BuildColumnStatistics(*t, "v", 64);
  ASSERT_TRUE(stats.ok());
  int64_t actual_top = static_cast<int64_t>(
      std::count(values.begin(), values.end(), 1));
  double est = stats->EstimateEquals(Value::Int64(1));
  EXPECT_NEAR(est, static_cast<double>(actual_top),
              static_cast<double>(actual_top) * 0.05 + 1);
  // The uniform model would be off by an order of magnitude.
  double uniform_guess = stats->row_count / stats->distinct_count;
  EXPECT_GT(est / uniform_guess, 5.0);
}

TEST_F(HistogramTest, RangeEstimates) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  Table* t = MakeTable(values);
  auto stats = BuildColumnStatistics(*t, "v", 32);
  ASSERT_TRUE(stats.ok());
  Value lo = Value::Int64(100), hi = Value::Int64(299);
  double est = stats->EstimateRange(&lo, true, &hi, true);
  EXPECT_NEAR(est, 200.0, 40.0);
  // Open-ended.
  double above = stats->EstimateRange(&hi, false, nullptr, false);
  EXPECT_NEAR(above, 700.0, 80.0);
}

TEST_F(HistogramTest, UnknownColumnFails) {
  Table* t = MakeTable({1});
  EXPECT_FALSE(BuildColumnStatistics(*t, "nope").ok());
}

TEST_F(HistogramTest, StatsCacheInvalidatesOnInsert) {
  Schema schema;
  schema.AddColumn(ColumnDef{"v", DataType::kInt64, true});
  Table* t = engine_.CreateTable("tc", schema).value();
  ASSERT_TRUE(t->Insert({Value::Int64(1)}).ok());
  auto s1 = engine_.GetStatistics("tc", "v");
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->row_count, 1);
  ASSERT_TRUE(t->Insert({Value::Int64(2)}).ok());
  auto s2 = engine_.GetStatistics("tc", "v");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->row_count, 2);
}

}  // namespace
}  // namespace dhqp
