// Lexer/parser unit tests: token forms, statement coverage, error paths.

#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace dhqp {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize(
      "SELECT x.a, 'it''s', 3.5e2, 42, @p1, [quoted id], \"also quoted\", "
      "#1999-01-02# <= >= <> !=");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.type);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[2].type, TokenType::kDot);
  EXPECT_EQ((*tokens)[5].type, TokenType::kString);
  EXPECT_EQ((*tokens)[5].text, "it's");
  EXPECT_EQ((*tokens)[7].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[9].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[11].type, TokenType::kParameter);
  EXPECT_EQ((*tokens)[11].text, "@p1");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT 1 -- trailing comment\n, 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens).size(), 5u);  // SELECT 1 , 2 EOF
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("[unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT ~").ok());
  EXPECT_FALSE(Tokenize("@").ok());
}

TEST(ParserTest, FourPartNames) {
  auto stmt = Parser::Parse("SELECT * FROM DeptSQLSrvr.Northwind.dbo.Employees");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const TableRef& ref = *(*stmt)->select->cores[0]->from;
  EXPECT_EQ(ref.name.server, "DeptSQLSrvr");
  EXPECT_EQ(ref.name.catalog, "Northwind");
  EXPECT_EQ(ref.name.schema, "dbo");
  EXPECT_EQ(ref.name.table, "Employees");
}

TEST(ParserTest, JoinShapes) {
  EXPECT_TRUE(Parser::Parse("SELECT * FROM a JOIN b ON a.x = b.y").ok());
  EXPECT_TRUE(Parser::Parse("SELECT * FROM a INNER JOIN b ON a.x = b.y").ok());
  EXPECT_TRUE(Parser::Parse("SELECT * FROM a LEFT JOIN b ON a.x = b.y").ok());
  EXPECT_TRUE(
      Parser::Parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y").ok());
  EXPECT_TRUE(Parser::Parse("SELECT * FROM a CROSS JOIN b").ok());
  EXPECT_TRUE(Parser::Parse("SELECT * FROM a, b, c WHERE a.x = b.y").ok());
  EXPECT_TRUE(Parser::Parse("SELECT * FROM (a JOIN b ON a.x = b.y) JOIN c "
                            "ON b.z = c.z").ok());
}

TEST(ParserTest, ExpressionForms) {
  const char* queries[] = {
      "SELECT 1 + 2 * 3 - 4 / 5 % 6",
      "SELECT -x FROM t",
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10",
      "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10",
      "SELECT * FROM t WHERE s LIKE 'a%' AND s NOT LIKE '%b'",
      "SELECT * FROM t WHERE a IN (1, 2, 3)",
      "SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)",
      "SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL",
      "SELECT * FROM t WHERE NOT (a = 1)",
      "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x)",
      "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)",
      "SELECT CAST(a AS FLOAT) FROM t",
      "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'z' END "
      "FROM t",
      "SELECT * FROM t WHERE CONTAINS(body, '\"full text\" OR other')",
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(a), AVG(a), MIN(a), MAX(a) "
      "FROM t",
      "SELECT DATE '1995-06-07'",
      "SELECT UPPER(name), ABS(x), YEAR(d) FROM t",
      "SELECT TOP 5 * FROM t ORDER BY a DESC, b",
      "SELECT DISTINCT a FROM t",
      "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1",
      "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1",
      "SELECT * FROM OPENQUERY(srv, 'select 1') AS q",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(Parser::Parse(q).ok())
        << q << " -> " << Parser::Parse(q).status().ToString();
  }
}

TEST(ParserTest, DdlAndDml) {
  auto create = Parser::Parse(
      "CREATE TABLE lineitem_92 (l_commitdate DATETIME NOT NULL CHECK "
      "(l_commitdate >= '1992-01-01' AND l_commitdate <= '1992-12-31'), "
      "qty INT PRIMARY KEY, note VARCHAR(40))");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_EQ((*create)->create_table->columns.size(), 3u);
  EXPECT_EQ((*create)->create_table->checks.size(), 1u);

  EXPECT_TRUE(Parser::Parse("CREATE UNIQUE INDEX i ON t (a, b)").ok());
  EXPECT_TRUE(Parser::Parse("CREATE VIEW v AS SELECT a FROM t").ok());
  auto insert = Parser::Parse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ((*insert)->insert->rows.size(), 2u);
}

TEST(ParserTest, ErrorsMentionLocation) {
  auto bad = Parser::Parse("SELECT FROM");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("near"), std::string::npos);

  EXPECT_FALSE(Parser::Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t GROUP").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM a.b.c.d.e").ok());
  EXPECT_FALSE(Parser::Parse("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(Parser::Parse("CREATE TABLE t (a NOTATYPE)").ok());
  EXPECT_FALSE(Parser::Parse("SELECT 1; SELECT 2").ok());  // One statement.
}

TEST(ParserTest, ViewBodyCapturedVerbatim) {
  auto stmt = Parser::Parse(
      "CREATE VIEW v AS SELECT a, b FROM t WHERE a > 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->create_view->body_sql, "SELECT a, b FROM t WHERE a > 3");
}

}  // namespace
}  // namespace dhqp
