// DOP-differential coverage for intra-query parallelism: every query runs
// under dop in {1, 2, 8} x exec_batch_rows in {0, 1024} and must produce
// identical result multisets, warnings, and outcomes — with dop=1/batch=0
// (the exact pre-PR serial executor) as the baseline. The corpus is
// integer-only so results are exact under any evaluation order; tables are
// sized past the optimizer's exchange break-even so dop>1 actually chooses
// parallel plans (asserted, not assumed). Also covers: serial plans at
// dop=1 (no Exchange anywhere), remote subtrees pinned serial, and profile
// truthfulness when per-worker stats merge into shared operator slots.

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "tests/differential_harness.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

const ExecMode kModes[] = {
    {1, 0}, {1, 1024}, {2, 0}, {2, 1024}, {8, 0}, {8, 1024},
};

constexpr int kBig1Rows = 8000;
constexpr int kBig2Rows = 6000;

// Bulk-loads `rows` synthetic rows in 1000-tuple INSERT statements.
void Fill(Engine* engine, const std::string& table, int rows, int cols) {
  for (int base = 0; base < rows; base += 1000) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    int end = std::min(base + 1000, rows);
    for (int i = base; i < end; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i);
      if (cols >= 2) sql += "," + std::to_string(i % 97);
      if (cols >= 3) sql += "," + std::to_string((i * 31) % 1009);
      sql += ")";
    }
    MustExecute(engine, sql);
  }
}

class ExchangeExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&host_,
                "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
    MustExecute(&host_, "CREATE TABLE big2 (a INT PRIMARY KEY, d INT)");
    Fill(&host_, "big1", kBig1Rows, 3);
    Fill(&host_, "big2", kBig2Rows, 2);
  }

  Engine host_;
};

const char* kCorpus[] = {
    "SELECT b, COUNT(*), SUM(c) FROM big1 GROUP BY b",
    "SELECT COUNT(*), SUM(b), MIN(c), MAX(c) FROM big1 WHERE c > 100",
    "SELECT a, b FROM big1 WHERE b = 13 ORDER BY a",
    "SELECT a, c FROM big1 WHERE c > 900 AND b < 50",
    "SELECT TOP 50 a, c FROM big1 WHERE c > 500 ORDER BY a",
    "SELECT big1.a, big1.c, big2.d FROM big1 JOIN big2 ON big1.a = big2.a "
    "WHERE big1.b < 40",
    "SELECT big1.b, COUNT(*), SUM(big2.d) FROM big1 JOIN big2 "
    "ON big1.a = big2.a GROUP BY big1.b",
    "SELECT big1.a, big2.d FROM big1 LEFT JOIN big2 ON big1.a = big2.a "
    "WHERE big1.b < 10",
    "SELECT big1.b, COUNT(DISTINCT big2.d) FROM big1 JOIN big2 "
    "ON big1.a = big2.a GROUP BY big1.b",
    "SELECT a FROM big1 WHERE b = 5 AND EXISTS "
    "(SELECT * FROM big2 WHERE big2.a = big1.a)",
};

TEST_F(ExchangeExecTest, CorpusIsDopAndBatchSizeInvariant) {
  bool any_parallel_plan = false;
  for (const char* sql : kCorpus) {
    Observation base = Observe(&host_, sql, ExecMode{1, 0});
    EXPECT_EQ(base.exchange_ops, 0) << sql << " (dop=1 plan must be serial)";
    for (const ExecMode& mode : kModes) {
      if (mode.dop == 1 && mode.batch_rows == 0) continue;
      Observation obs = Observe(&host_, sql, mode);
      ExpectEquivalent(base, obs, sql, mode.Label());
      if (mode.dop == 1) {
        EXPECT_EQ(obs.exchange_ops, 0) << sql;
      }
      if (obs.exchange_ops > 0) {
        any_parallel_plan = true;
        // The workers really ran: every exchange has at least one producer.
        EXPECT_GT(obs.parallel_workers, 0) << sql << " (" << mode.Label()
                                           << ")";
      }
    }
  }
  // The suite must actually exercise parallel execution, not vacuously
  // compare serial plans six times.
  EXPECT_TRUE(any_parallel_plan)
      << "no corpus query chose a parallel plan at dop>1 — tables below the "
         "exchange break-even or the enforcer regressed";
}

TEST_F(ExchangeExecTest, SerialPlansRenderWithoutExchange) {
  host_.options()->execution.dop = 1;
  for (const char* sql : kCorpus) {
    auto text = host_.Explain(sql);
    ASSERT_TRUE(text.ok()) << sql;
    EXPECT_EQ(text.value().find("Exchange"), std::string::npos) << sql;
  }
}

// Generated distributed queries: local big tables plus a remote member.
// Remote subtrees stay serial at any dop, so results — and the remote row
// counts for non-semi-join plans — agree across the whole mode cross.
class ExchangeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExchangeDifferentialTest, GeneratedQueriesAgreeAcrossDopAndBatch) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "rsrv");
  MustExecute(&host, "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
  MustExecute(&host, "CREATE TABLE big2 (a INT PRIMARY KEY, d INT)");
  Fill(&host, "big1", kBig1Rows, 3);
  Fill(&host, "big2", kBig2Rows, 2);
  MustExecute(remote.engine.get(), "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
  std::string insert = "INSERT INTO r VALUES ";
  Rng data_rng(GetParam() * 40503 + 9);
  std::set<int64_t> used;
  for (int i = 0; i < 400; ++i) {
    int64_t key;
    do {
      key = data_rng.Uniform(0, 4000);
    } while (!used.insert(key).second);
    if (i) insert += ",";
    insert += "(" + std::to_string(key) + "," +
              std::to_string(data_rng.Uniform(-5, 40)) + ")";
  }
  MustExecute(remote.engine.get(), insert);

  DifferentialQueryGenerator generator(
      GetParam(), {{"big1", "big1"}, {"big2", "big2"}, {"rsrv.db.dbo.r", "r"}},
      /*max_const=*/kBig1Rows);
  for (int q = 0; q < 12; ++q) {
    std::string sql = generator.Next();
    Observation base = Observe(&host, sql, ExecMode{1, 0});
    for (const ExecMode& mode : kModes) {
      if (mode.dop == 1 && mode.batch_rows == 0) continue;
      Observation obs = Observe(&host, sql, mode);
      // Remote row counts may differ only through semi-join early
      // termination, which the generator never produces — but plan shape
      // (hash vs nested loops) can change what is pulled, so keep the
      // strict surface to results/warnings/outcome.
      ExpectEquivalent(base, obs, sql, mode.Label(),
                       /*compare_remote_rows=*/false);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeDifferentialTest,
                         ::testing::Values(1, 2, 3, 4));

// Per-worker profile merge: every worker's instance of an operator flushes
// additively into the operator's single shared slot, so EXPLAIN ANALYZE
// totals stay truthful at any dop — the partitioned scan instances sum to
// exactly the table's row count, the plan root to the result's.
TEST_F(ExchangeExecTest, OperatorProfileTotalsAreTruthfulUnderDop) {
  host_.options()->execution.collect_operator_stats = true;
  const std::string sql = "SELECT b, COUNT(*), SUM(c) FROM big1 GROUP BY b";
  QueryResult serial = MustExecute(&host_, sql);

  Observation obs = Observe(&host_, sql, ExecMode{4, 1024});
  ASSERT_TRUE(obs.ok);
  ASSERT_GT(obs.exchange_ops, 0) << "query did not parallelize at dop=4";
  EXPECT_GT(obs.parallel_workers, 0);

  QueryResult parallel = MustExecute(&host_, sql);  // Same mode, kept result.
  ASSERT_NE(parallel.profile, nullptr);
  ASSERT_NE(serial.profile, nullptr);
  // Root rows_out == rows returned, serial or parallel.
  EXPECT_EQ(parallel.profile->rows_out.load(), serial.profile->rows_out.load());
  EXPECT_EQ(parallel.profile->rows_out.load(),
            static_cast<int64_t>(parallel.rowset->rows().size()));

  // The table-scan slot is shared by all workers; their disjoint
  // block-cyclic slices must sum to the full table, exactly once.
  std::function<void(const OperatorProfile&, std::vector<const OperatorProfile*>*)>
      flatten = [&](const OperatorProfile& node,
                    std::vector<const OperatorProfile*>* out) {
        out->push_back(&node);
        for (const auto& child : node.children) flatten(*child, out);
      };
  std::vector<const OperatorProfile*> nodes;
  flatten(*parallel.profile, &nodes);
  int64_t scan_rows = -1;
  for (const OperatorProfile* node : nodes) {
    if (node->name.find("TableScan(big1") != std::string::npos) {
      scan_rows = node->rows_out.load();
    }
  }
  EXPECT_EQ(scan_rows, kBig1Rows);
}

// dm_exec_operator_stats (per-query DMV over the same profile tree) shows
// the merged per-worker totals too.
TEST_F(ExchangeExecTest, ExchangeCountersVisibleInMetricsDmv) {
  Observation obs = Observe(&host_, "SELECT b, COUNT(*) FROM big1 GROUP BY b",
                            ExecMode{4, 1024});
  ASSERT_TRUE(obs.ok);
  ASSERT_GT(obs.exchange_ops, 0);
  QueryResult m = MustExecute(&host_,
                              "SELECT name, value FROM sys..dm_metrics "
                              "WHERE name = 'exec.exchange_batches'");
  ASSERT_NE(m.rowset, nullptr);
  ASSERT_EQ(m.rowset->rows().size(), 1u);
  EXPECT_GT(m.rowset->rows()[0][1].int64_value(), 0);
}

}  // namespace
}  // namespace dhqp
