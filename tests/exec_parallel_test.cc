// Tests for the asynchronous block-fetch pipeline (PrefetchingRowset) and
// parallel partitioned-view (Concat) execution: error propagation from
// producer threads, Restart of prefetching nodes, and parallel vs sequential
// result equivalence.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/executor/prefetch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

Schema OneIntSchema() {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  return schema;
}

std::vector<Row> IntRows(int n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int64(i)});
  return rows;
}

/// Yields `fail_after` rows, then returns a NetworkError from Next() — a
/// remote stream dying mid-flight. Does not support Restart.
class FlakyRowset : public Rowset {
 public:
  FlakyRowset(Schema schema, int fail_after)
      : schema_(std::move(schema)), fail_after_(fail_after) {}

  const Schema& schema() const override { return schema_; }

  Result<bool> Next(Row* out) override {
    if (served_ >= fail_after_) {
      return Status::NetworkError("link dropped mid-stream");
    }
    *out = {Value::Int64(served_++)};
    return true;
  }

 private:
  Schema schema_;
  int fail_after_;
  int served_ = 0;
};

ExecOptions SmallBatches() {
  ExecOptions options;
  options.remote_batch_rows = 64;
  options.prefetch_queue_depth = 2;
  return options;
}

TEST(PrefetchingRowsetTest, StreamsAllRowsInOrder) {
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(1000)),
      SmallBatches(), &stats);
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained->size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ((*drained)[static_cast<size_t>(i)][0].int64_value(), i);
  }
  // 1000 rows at batch 64 -> 16 ceil'd blocks.
  EXPECT_EQ(stats.remote_batches, 16);
}

TEST(PrefetchingRowsetTest, ProducerErrorReachesConsumerAndSticks) {
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<FlakyRowset>(OneIntSchema(), /*fail_after=*/150),
      SmallBatches(), &stats);
  Row row;
  int got = 0;
  Status error = Status::OK();
  while (true) {
    auto has = rowset.Next(&row);
    if (!has.ok()) {
      error = has.status();
      break;
    }
    if (!*has) break;
    ++got;
  }
  // Two full 64-row batches arrive; the third dies mid-batch and the error
  // replaces it.
  EXPECT_EQ(got, 128);
  EXPECT_EQ(error.code(), StatusCode::kNetworkError);
  // The error is sticky: the consumer cannot accidentally read past it.
  auto again = rowset.Next(&row);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNetworkError);
}

TEST(PrefetchingRowsetTest, RestartRewindsAndRelaunchesProducer) {
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)),
      SmallBatches(), &stats);
  Row row;
  for (int i = 0; i < 50; ++i) {
    auto has = rowset.Next(&row);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(*has);
  }
  ASSERT_OK(rowset.Restart());
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained->size(), 200u);
  EXPECT_EQ((*drained)[0][0].int64_value(), 0);
  EXPECT_EQ((*drained)[199][0].int64_value(), 199);
  // Restart after full drain works too.
  ASSERT_OK(rowset.Restart());
  drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 200u);
}

TEST(PrefetchingRowsetTest, RestartOverStreamingInnerReportsNotSupported) {
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<FlakyRowset>(OneIntSchema(), /*fail_after=*/1000000),
      SmallBatches(), &stats);
  Row row;
  auto has = rowset.Next(&row);
  ASSERT_TRUE(has.ok());
  // FlakyRowset keeps the base-class Restart; the wrapper must surface that
  // so the executor falls back to reopening the source.
  Status st = rowset.Restart();
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST(PrefetchingRowsetTest, NextBatchHandsOverProducerBatches) {
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)),
      SmallBatches(), &stats);
  RowBatch batch;
  int64_t total = 0;
  while (true) {
    auto has = rowset.NextBatch(&batch, 1000);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    total += static_cast<int64_t>(batch.size());
  }
  EXPECT_EQ(total, 200);
}

// ---------------------------------------------------------------------------
// End-to-end: a linked server whose rowsets die mid-stream.
// ---------------------------------------------------------------------------

class FlakySession : public Session {
 public:
  explicit FlakySession(int fail_after) : fail_after_(fail_after) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(
      const std::string& table) override {
    if (table != "t") return Status::NotFound("no table '" + table + "'");
    return std::unique_ptr<Rowset>(
        std::make_unique<FlakyRowset>(OneIntSchema(), fail_after_));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    TableMetadata meta;
    meta.name = "t";
    meta.schema = OneIntSchema();
    meta.cardinality = 100000;
    return std::vector<TableMetadata>{std::move(meta)};
  }

 private:
  int fail_after_;
};

/// A simple (non-query-capable) provider whose table scans fail mid-stream:
/// the host is forced to plan a RemoteScan and the failure arrives on the
/// prefetch producer thread.
class FlakyDataSource : public DataSource {
 public:
  explicit FlakyDataSource(int fail_after) : fail_after_(fail_after) {
    caps_.provider_name = "Flaky";
    caps_.source_type = "Test";
    caps_.query_language = "none";
    caps_.supports_schema_rowset = true;
  }

  const ProviderCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<Session>> CreateSession() override {
    return std::unique_ptr<Session>(
        std::make_unique<FlakySession>(fail_after_));
  }

 private:
  ProviderCapabilities caps_;
  int fail_after_;
};

TEST(PrefetchEndToEndTest, MidStreamRemoteFailureSurfacesAsQueryError) {
  Engine host;
  ASSERT_OK(host.AddLinkedServer(
      "flk", std::make_shared<FlakyDataSource>(/*fail_after=*/300)));
  auto result = host.Execute("SELECT a FROM flk.d.s.t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(result.status().ToString().find("link dropped"), std::string::npos)
      << result.status().ToString();
  // The engine stays usable after a failed remote query.
  MustExecute(&host, "CREATE TABLE l (x INT)");
  MustExecute(&host, "INSERT INTO l (x) VALUES (7)");
  EXPECT_EQ(RowsToString(MustExecute(&host, "SELECT x FROM l")), "(7)");
}

// ---------------------------------------------------------------------------
// Parallel partitioned-view (Concat) execution.
// ---------------------------------------------------------------------------

class ParallelConcatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int m = 0; m < 3; ++m) {
      RemoteServer server =
          AttachRemoteEngine(&host_, "m" + std::to_string(m));
      MustExecute(server.engine.get(), "CREATE TABLE part (id INT, v INT)");
      for (int i = 0; i < 40; ++i) {
        MustExecute(server.engine.get(),
                    "INSERT INTO part (id, v) VALUES (" +
                        std::to_string(m * 1000 + i) + ", " +
                        std::to_string(i) + ")");
      }
      servers_.push_back(std::move(server));
    }
    MustExecute(&host_,
                "CREATE VIEW part_all AS "
                "SELECT * FROM m0.d.s.part UNION ALL "
                "SELECT * FROM m1.d.s.part UNION ALL "
                "SELECT * FROM m2.d.s.part");
  }

  /// Result rows as a sorted multiset: parallel branches may interleave, so
  /// only the multiset is comparable.
  static std::multiset<std::string> RowMultiset(const QueryResult& result) {
    std::multiset<std::string> out;
    for (const Row& row : result.rowset->rows()) out.insert(RowToString(row));
    return out;
  }

  Engine host_;
  std::vector<RemoteServer> servers_;
};

TEST_F(ParallelConcatTest, ParallelMatchesSequentialRowMultiset) {
  host_.options()->execution.concat_dop = 1;
  QueryResult sequential = MustExecute(&host_, "SELECT id, v FROM part_all");
  EXPECT_EQ(sequential.exec_stats.parallel_branches, 0);
  EXPECT_EQ(sequential.exec_stats.partitions_opened, 3);
  ASSERT_EQ(sequential.rowset->rows().size(), 120u);

  host_.options()->execution.concat_dop = 4;
  QueryResult parallel = MustExecute(&host_, "SELECT id, v FROM part_all");
  EXPECT_EQ(parallel.exec_stats.parallel_branches, 3);
  EXPECT_EQ(parallel.exec_stats.partitions_opened, 3);
  EXPECT_EQ(RowMultiset(sequential), RowMultiset(parallel));
}

TEST_F(ParallelConcatTest, AggregateOverParallelViewIsExact) {
  host_.options()->execution.concat_dop = 4;
  QueryResult r =
      MustExecute(&host_, "SELECT COUNT(*), SUM(v) FROM part_all");
  // 3 members x 40 rows; v sums to 0+..+39 = 780 per member.
  EXPECT_EQ(RowsToString(r), "(120, 2340)");
  EXPECT_EQ(r.exec_stats.parallel_branches, 3);
}

TEST_F(ParallelConcatTest, SingleBranchAfterPruningStaysSequential) {
  host_.options()->execution.concat_dop = 4;
  // A single-member view has nothing to fan out; it must not pay for
  // worker threads.
  MustExecute(&host_, "CREATE VIEW one_member AS SELECT * FROM m0.d.s.part");
  QueryResult r = MustExecute(&host_, "SELECT COUNT(*) FROM one_member");
  EXPECT_EQ(RowsToString(r), "(40)");
  EXPECT_EQ(r.exec_stats.parallel_branches, 0);
}

TEST_F(ParallelConcatTest, ErrorInOneBranchFailsTheQuery) {
  ASSERT_OK(host_.AddLinkedServer(
      "flk", std::make_shared<FlakyDataSource>(/*fail_after=*/10)));
  MustExecute(&host_,
              "CREATE VIEW with_flaky AS "
              "SELECT id FROM m0.d.s.part UNION ALL "
              "SELECT id FROM m1.d.s.part UNION ALL "
              "SELECT a FROM flk.d.s.t");
  host_.options()->execution.concat_dop = 4;
  auto result = host_.Execute("SELECT id FROM with_flaky");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
}

// Restart of a prefetching scan inside a rescanned subtree: disable spools
// by rescanning through a nested-loops join where the inner is a remote
// scan wrapped in a prefetcher. The executor's Restart path must tear the
// producer down and relaunch it (or reopen) without losing rows.
TEST(PrefetchEndToEndTest, RescannedRemoteScanRestartsCleanly) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "r");
  MustExecute(remote.engine.get(), "CREATE TABLE inner_t (k INT)");
  for (int i = 0; i < 5; ++i) {
    MustExecute(remote.engine.get(),
                "INSERT INTO inner_t (k) VALUES (" + std::to_string(i) + ")");
  }
  MustExecute(&host, "CREATE TABLE outer_t (k INT)");
  for (int i = 0; i < 4; ++i) {
    MustExecute(&host,
                "INSERT INTO outer_t (k) VALUES (" + std::to_string(i) + ")");
  }
  QueryResult r = MustExecute(
      &host,
      "SELECT COUNT(*) FROM outer_t, r.d.s.inner_t "
      "WHERE outer_t.k = inner_t.k");
  EXPECT_EQ(RowsToString(r), "(4)");
}

}  // namespace
}  // namespace dhqp
