// Network simulation tests: link accounting, batch charging, and the
// federation workload harness (TPC-C-lite over 2PC).

#include "src/workloads/tpcc.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

TEST(LinkTest, MessageAndRowAccounting) {
  net::Link link("test");
  link.ChargeMessage(100);
  link.ChargeRows(10, 250);
  EXPECT_EQ(link.stats().messages, 1);
  EXPECT_EQ(link.stats().rows, 10);
  EXPECT_EQ(link.stats().bytes, 350);
  link.ResetStats();
  EXPECT_EQ(link.stats().messages, 0);
}

TEST(LinkTest, EnforcedDelayIsMeasurable) {
  net::Link link("slow", /*latency_us=*/200, /*us_per_kb=*/0,
                 /*enforce_delays=*/true);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) link.ChargeMessage(10);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 5 * 200);
}

TEST(LinkTest, LinkedRowsetChargesBatches) {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({Value::Int64(i)});
  net::Link link("l");
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(schema, rows), &link, /*batch_rows=*/64);
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 200u);
  EXPECT_EQ(link.stats().rows, 200);
  // 200 rows at batch 64 -> 4 messages (3 full + 1 final partial).
  EXPECT_EQ(link.stats().messages, 4);
  EXPECT_GT(link.stats().bytes, 0);
}

TEST(LinkTest, NextBatchChargesOneMessagePerBatch) {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({Value::Int64(i)});
  net::Link link("l");
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(schema, rows), &link, /*batch_rows=*/64);

  RowBatch batch;
  int batches = 0;
  int64_t total_rows = 0;
  while (true) {
    auto has = rowset.NextBatch(&batch, 64);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    ++batches;
    total_rows += static_cast<int64_t>(batch.size());
    // One block fetch == exactly one round trip.
    EXPECT_EQ(link.stats().messages, batches);
  }
  // 200 rows at batch 64 -> 3 full + 1 final partial batch.
  EXPECT_EQ(batches, 4);
  EXPECT_EQ(total_rows, 200);
  EXPECT_EQ(link.stats().rows, 200);
  EXPECT_EQ(link.stats().messages, 4);
}

TEST(LinkTest, NextBatchByteAccountingMatchesWireSize) {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  schema.AddColumn(ColumnDef{"s", DataType::kString, false});
  std::vector<Row> rows;
  size_t expected_bytes = 0;
  for (int i = 0; i < 10; ++i) {
    Row row{Value::Int64(i), Value::String("payload-" + std::to_string(i))};
    expected_bytes += RowWireSize(row);
    rows.push_back(std::move(row));
  }
  net::Link link("l");
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(schema, rows), &link, /*batch_rows=*/64);

  RowBatch batch;
  auto has = rowset.NextBatch(&batch, 100);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(link.stats().bytes, static_cast<int64_t>(expected_bytes));
  has = rowset.NextBatch(&batch, 100);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  // End of stream adds no extra message.
  EXPECT_EQ(link.stats().messages, 1);
}

TEST(LinkTest, MixedNextAndNextBatchSettlesPartialBatch) {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value::Int64(i)});
  net::Link link("l");
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(schema, rows), &link, /*batch_rows=*/64);

  // Row-at-a-time pulls accumulate into an open (uncharged) batch...
  Row row;
  for (int i = 0; i < 3; ++i) {
    auto has = rowset.Next(&row);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(*has);
  }
  EXPECT_EQ(link.stats().messages, 0);
  // ...then the first block fetch settles the open batch before charging
  // its own round trip, so no pulled row goes unaccounted.
  RowBatch batch;
  auto has = rowset.NextBatch(&batch, 100);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(batch.size(), 7u);
  EXPECT_EQ(link.stats().messages, 2);  // Settled tail + the block fetch.
  has = rowset.NextBatch(&batch, 100);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  EXPECT_EQ(link.stats().rows, 10);
  EXPECT_EQ(link.stats().messages, 2);  // End of stream adds nothing.
}

TEST(TpccFederationTest, NewOrderRoutesAndCommits) {
  workloads::TpccOptions options;
  options.num_members = 3;
  options.warehouses_per_member = 2;
  options.customers_per_warehouse = 20;
  auto fed = workloads::BuildTpccFederation(options);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  TransactionCoordinator dtc;
  // Warehouse 3 lives on member 1 ((3-1)/2 = 1).
  auto order = (*fed)->NewOrder(&dtc, /*warehouse=*/3, /*customer=*/7,
                                /*order_id=*/500);
  ASSERT_TRUE(order.ok()) << order.status().ToString();

  QueryResult check = MustExecute(
      (*fed)->members[1].get(),
      "SELECT COUNT(*) FROM orders WHERE o_id = 500 AND w_id = 3");
  EXPECT_EQ(RowsToString(check), "(1)");
  // Other members untouched.
  check = MustExecute((*fed)->members[0].get(),
                      "SELECT COUNT(*) FROM orders");
  EXPECT_EQ(RowsToString(check), "(0)");

  // The partitioned-view read pruned the other members at startup.
  QueryResult lookup = MustExecute(
      (*fed)->coordinator.get(),
      "SELECT c_balance FROM customers_all WHERE w_id = @w AND c_id = @c",
      {{"@w", Value::Int64(3)}, {"@c", Value::Int64(7)}});
  EXPECT_EQ(lookup.exec_stats.startup_skips, 2);
}

TEST(TpccFederationTest, UnknownCustomerFails) {
  workloads::TpccOptions options;
  options.num_members = 2;
  options.customers_per_warehouse = 5;
  auto fed = workloads::BuildTpccFederation(options);
  ASSERT_TRUE(fed.ok());
  TransactionCoordinator dtc;
  auto missing = (*fed)->NewOrder(&dtc, 1, 9999, 1);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dhqp
