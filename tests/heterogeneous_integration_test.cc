// End-to-end heterogeneous integration: one query spanning four different
// provider kinds at once (the paper's central scenario — §1's "efficient and
// flexible access to diverse data sources").

#include "src/connectors/csv_provider.h"
#include "src/connectors/sheet_provider.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

TEST(HeterogeneousIntegrationTest, FourSourcesOneQuery) {
  Engine host;

  // Source 1: local storage — orders.
  MustExecute(&host,
              "CREATE TABLE orders (id INT PRIMARY KEY, cust VARCHAR(20), "
              "product VARCHAR(20), qty INT)");
  MustExecute(&host,
              "INSERT INTO orders VALUES "
              "(1,'ann','widget',5),(2,'li','gadget',2),"
              "(3,'ann','gadget',1),(4,'omar','widget',9)");

  // Source 2: a remote SQL engine — product prices.
  RemoteServer remote = AttachRemoteEngine(&host, "pricesrv");
  MustExecute(remote.engine.get(),
              "CREATE TABLE prices (product VARCHAR(20), unit FLOAT)");
  MustExecute(remote.engine.get(),
              "INSERT INTO prices VALUES ('widget', 2.5), ('gadget', 10.0)");

  // Source 3: a CSV file — customer regions.
  auto csv = std::make_shared<CsvDataSource>();
  ASSERT_OK(csv->AddTable("regions",
                          "cust,region\nann,west\nli,east\nomar,west\n"));
  ASSERT_OK(host.AddLinkedServer("filesrv", csv));

  // Source 4: a spreadsheet — regional discount rates.
  auto sheets = std::make_shared<SheetDataSource>();
  Schema sheet_schema;
  sheet_schema.AddColumn(ColumnDef{"region", DataType::kString, true});
  sheet_schema.AddColumn(ColumnDef{"discount", DataType::kDouble, true});
  ASSERT_OK(sheets->AddSheet("discounts", sheet_schema,
                             {{Value::String("west"), Value::Double(0.1)},
                              {Value::String("east"), Value::Double(0.0)}}));
  ASSERT_OK(host.AddLinkedServer("xlsrv", sheets));

  // One statement across all four.
  QueryResult r = MustExecute(
      &host,
      "SELECT o.cust, SUM(o.qty * p.unit * (1.0 - d.discount)) AS total "
      "FROM orders o "
      "JOIN pricesrv.db.dbo.prices p ON o.product = p.product "
      "JOIN filesrv.files.dbo.regions g ON o.cust = g.cust "
      "JOIN xlsrv.book.dbo.discounts d ON g.region = d.region "
      "GROUP BY o.cust ORDER BY o.cust");
  // ann: 5*2.5*0.9 + 1*10*0.9 = 11.25 + 9 = 20.25
  // li: 2*10*1.0 = 20; omar: 9*2.5*0.9 = 20.25
  EXPECT_EQ(RowsToString(r), "(ann, 20.25)(li, 20)(omar, 20.25)");
}

TEST(HeterogeneousIntegrationTest, MixedCapabilitiesPushdownSplit) {
  // Two remote sources with different capabilities in one query: the SQL
  // provider receives a pushed filter, the simple provider is scanned and
  // filtered locally.
  Engine host;
  RemoteServer sql_srv = AttachRemoteEngine(&host, "sqlsrv");
  MustExecute(sql_srv.engine.get(), "CREATE TABLE a (k INT PRIMARY KEY, x INT)");
  for (int i = 0; i < 300; i += 100) {
    std::string sql = "INSERT INTO a VALUES ";
    for (int j = 0; j < 100; ++j) {
      if (j) sql += ",";
      int k = i + j;
      sql += "(" + std::to_string(k) + "," + std::to_string(k % 10) + ")";
    }
    MustExecute(sql_srv.engine.get(), sql);
  }
  auto csv = std::make_shared<CsvDataSource>();
  std::string text = "k,y\n";
  for (int i = 0; i < 50; ++i) {
    text += std::to_string(i * 6) + "," + std::to_string(i) + "\n";
  }
  ASSERT_OK(csv->AddTable("b", text));
  ASSERT_OK(host.AddLinkedServer("csvsrv", csv));

  QueryResult r = MustExecute(
      &host,
      "SELECT COUNT(*) FROM sqlsrv.d.s.a a JOIN csvsrv.d.s.b b ON a.k = b.k "
      "WHERE a.x = 4 AND b.y > 10");
  // a.x = 4 -> k % 10 == 4; b.k = 6i (i>10) -> k in {66..294 step 6};
  // matches need k%10==4 and k=6i: k in {84,114,144,174,204,234,264,294}.
  EXPECT_EQ(RowsToString(r), "(8)");
  // The filter on `a` went remote (either inside a pushed query or a
  // parameterized probe); far fewer than 300 rows shipped from sqlsrv.
  EXPECT_LT(r.exec_stats.rows_from_remote, 100);
}

}  // namespace
}  // namespace dhqp
