// Decoder unit tests (§4.1.3): logical trees back to SQL text, dialect
// awareness, capability clamping ("fully used while not overshooting").

#include <gtest/gtest.h>

#include "src/connectors/engine_provider.h"
#include "src/optimizer/decoder.h"

namespace dhqp {
namespace {

class DecoderTest : public ::testing::Test {
 protected:
  DecoderTest()
      : storage_(), catalog_(&storage_), registry_(),
        ctx_(&catalog_, &registry_, OptimizerOptions{}), decoder_(&ctx_) {}

  // Builds a remote Get over a two-column table.
  LogicalOpPtr MakeRemoteGet() {
    ResolvedTable table;
    table.source_id = 0;
    table.server_name = "srv";
    table.metadata.name = "items";
    table.metadata.schema.AddColumn(ColumnDef{"id", DataType::kInt64, false});
    table.metadata.schema.AddColumn(ColumnDef{"d", DataType::kDate, true});
    table.metadata.cardinality = 100;
    id_col_ = registry_.Add("i", "id", DataType::kInt64);
    d_col_ = registry_.Add("i", "d", DataType::kDate);
    return MakeGet(table, "i", {id_col_, d_col_});
  }

  StorageEngine storage_;
  Catalog catalog_;
  ColumnRegistry registry_;
  OptimizerContext ctx_;
  Decoder decoder_;
  int id_col_ = -1;
  int d_col_ = -1;
};

TEST_F(DecoderTest, SimpleScanSelect) {
  auto caps = SqlServerCapabilities();
  auto decoded = decoder_.Decode(MakeRemoteGet(), caps);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sql,
            "SELECT [i].[id] AS [c0], [i].[d] AS [c1] FROM [items] AS [i]");
  EXPECT_EQ(decoded->output_cols.size(), 2u);
}

TEST_F(DecoderTest, FilterBecomesWhere) {
  auto get = MakeRemoteGet();
  auto tree = MakeFilter(get,
                         MakeComparison(">", MakeColumn(id_col_, DataType::kInt64, "i.id"),
                                        MakeLiteral(Value::Int64(5))));
  auto decoded = decoder_.Decode(tree, SqlServerCapabilities());
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(decoded->sql.find("WHERE ([i].[id] > 5)"), std::string::npos)
      << decoded->sql;
}

TEST_F(DecoderTest, DateLiteralStyles) {
  auto make_tree = [&]() {
    auto get = MakeRemoteGet();
    return MakeFilter(get,
                      MakeComparison("=", MakeColumn(d_col_, DataType::kDate, "i.d"),
                                     MakeLiteral(Value::Date(
                                         CivilToDays(1995, 3, 15)))));
  };
  auto sqlserver = decoder_.Decode(make_tree(), SqlServerCapabilities());
  ASSERT_TRUE(sqlserver.ok());
  EXPECT_NE(sqlserver->sql.find("'1995-03-15'"), std::string::npos);

  auto oracle = decoder_.Decode(make_tree(), OracleCapabilities());
  ASSERT_TRUE(oracle.ok());
  EXPECT_NE(oracle->sql.find("DATE '1995-03-15'"), std::string::npos);

  auto access = decoder_.Decode(make_tree(), AccessCapabilities());
  ASSERT_TRUE(access.ok());
  EXPECT_NE(access->sql.find("#1995-03-15#"), std::string::npos);
}

TEST_F(DecoderTest, StringEscaping) {
  auto get = MakeRemoteGet();
  auto tree = MakeFilter(
      get, MakeComparison("=", MakeColumn(id_col_, DataType::kInt64, "i.id"),
                          MakeLiteral(Value::String("it's"))));
  auto decoded = decoder_.Decode(tree, SqlServerCapabilities());
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(decoded->sql.find("'it''s'"), std::string::npos);
}

TEST_F(DecoderTest, AggregateNeedsSql92Entry) {
  std::vector<AggregateItem> aggs;
  AggregateItem count;
  count.func = "COUNT*";
  count.output_col = registry_.Add("", "count", DataType::kInt64);
  count.type = DataType::kInt64;
  aggs.push_back(count);
  auto tree = MakeAggregate(MakeRemoteGet(), {}, aggs);

  EXPECT_TRUE(decoder_.IsRemotable(tree, SqlServerCapabilities()));
  EXPECT_TRUE(decoder_.IsRemotable(tree, Db2Capabilities()));
  EXPECT_FALSE(decoder_.IsRemotable(tree, AccessCapabilities()));

  auto decoded = decoder_.Decode(tree, SqlServerCapabilities());
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(decoded->sql.find("COUNT(*)"), std::string::npos);
}

TEST_F(DecoderTest, GroupByAndHaving) {
  std::vector<AggregateItem> aggs;
  AggregateItem count;
  count.func = "COUNT*";
  count.output_col = registry_.Add("", "count", DataType::kInt64);
  count.type = DataType::kInt64;
  aggs.push_back(count);
  auto get = MakeRemoteGet();
  auto agg = MakeAggregate(get, {id_col_}, aggs);
  auto tree = MakeFilter(
      agg, MakeComparison(">", MakeColumn(count.output_col, DataType::kInt64,
                                          "count"),
                          MakeLiteral(Value::Int64(2))));
  auto decoded = decoder_.Decode(tree, SqlServerCapabilities());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_NE(decoded->sql.find("GROUP BY [i].[id]"), std::string::npos);
  EXPECT_NE(decoded->sql.find("HAVING (COUNT(*) > 2)"), std::string::npos);
}

TEST_F(DecoderTest, SemiJoinNotRemotable) {
  // §4.1.4: semi-join has no direct SQL corollary.
  auto left = MakeRemoteGet();
  auto right = MakeRemoteGet();
  auto semi = MakeJoin(JoinType::kSemi, left, right,
                       MakeLiteral(Value::Bool(true)));
  EXPECT_FALSE(decoder_.IsRemotable(semi, SqlServerCapabilities()));
}

TEST_F(DecoderTest, ParametersRequireCapability) {
  auto get = MakeRemoteGet();
  auto tree = MakeFilter(get,
                         MakeComparison("=", MakeColumn(id_col_, DataType::kInt64, "i.id"),
                                        MakeParam("@p", DataType::kInt64)));
  EXPECT_TRUE(decoder_.IsRemotable(tree, SqlServerCapabilities()));
  EXPECT_FALSE(decoder_.IsRemotable(tree, OracleCapabilities()));
  auto decoded = decoder_.Decode(tree, SqlServerCapabilities());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->params.size(), 1u);
  EXPECT_EQ(decoded->params[0], "@p");
}

TEST_F(DecoderTest, ContainsNeverRemoted) {
  auto contains = std::make_shared<ScalarExpr>();
  contains->kind = ScalarKind::kFunc;
  contains->op = "CONTAINS";
  contains->type = DataType::kBool;
  auto get = MakeRemoteGet();
  contains->args.push_back(MakeColumn(id_col_, DataType::kString, "i.id"));
  contains->args.push_back(MakeLiteral(Value::String("word")));
  auto tree = MakeFilter(get, contains);
  EXPECT_FALSE(decoder_.IsRemotable(tree, SqlServerCapabilities()));
}

TEST_F(DecoderTest, MinimumLevelRejectsOrAndLike) {
  ProviderCapabilities minimal = SqlServerCapabilities();
  minimal.sql_support = SqlSupportLevel::kMinimum;
  auto get = MakeRemoteGet();
  auto col = MakeColumn(id_col_, DataType::kInt64, "i.id");
  auto with_or = MakeFilter(
      get, MakeOr(MakeComparison("=", col, MakeLiteral(Value::Int64(1))),
                              MakeComparison("=", col, MakeLiteral(Value::Int64(2)))));
  EXPECT_FALSE(decoder_.IsRemotable(with_or, minimal));
  // Plain conjunctive comparisons are fine at minimum level.
  auto with_and = MakeFilter(
      get, MakeAnd(MakeComparison(">", col, MakeLiteral(Value::Int64(1))),
                               MakeComparison("<", col, MakeLiteral(Value::Int64(9)))));
  EXPECT_TRUE(decoder_.IsRemotable(with_and, minimal));
  // Joins need ODBC Core.
  auto join = MakeJoin(JoinType::kInner, MakeRemoteGet(), MakeRemoteGet(),
                       nullptr);
  EXPECT_FALSE(decoder_.IsRemotable(join, minimal));
}

}  // namespace
}  // namespace dhqp
