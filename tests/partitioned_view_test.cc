// Partitioned views (§4.1.5): static pruning via the constraint property
// framework, runtime pruning via startup filters, and INSERT routing.

#include "src/workloads/tpch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

// Local partitioned view over three CHECK-partitioned member tables.
class LocalPartitionedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int p = 0; p < 3; ++p) {
      int lo = p * 100 + 1, hi = (p + 1) * 100;
      MustExecute(&engine_, "CREATE TABLE orders_p" + std::to_string(p) +
                                " (id INT NOT NULL CHECK (id BETWEEN " +
                                std::to_string(lo) + " AND " +
                                std::to_string(hi) + "), amount INT)");
      std::string sql =
          "INSERT INTO orders_p" + std::to_string(p) + " VALUES ";
      for (int i = lo; i <= hi; ++i) {
        if (i > lo) sql += ",";
        sql += "(" + std::to_string(i) + "," + std::to_string(i * 2) + ")";
      }
      MustExecute(&engine_, sql);
    }
    MustExecute(&engine_,
                "CREATE VIEW orders_all AS "
                "SELECT * FROM orders_p0 UNION ALL "
                "SELECT * FROM orders_p1 UNION ALL "
                "SELECT * FROM orders_p2");
  }

  Engine engine_;
};

TEST_F(LocalPartitionedViewTest, QueriesAllPartitions) {
  QueryResult r = MustExecute(&engine_, "SELECT COUNT(*) FROM orders_all");
  EXPECT_EQ(RowsToString(r), "(300)");
}

TEST_F(LocalPartitionedViewTest, StaticPruningWithConstant) {
  // id = 150 can only live in partition 1: the other branches reduce to
  // empty tables at compile time.
  QueryResult r = MustExecute(
      &engine_, "SELECT amount FROM orders_all WHERE id = 150");
  EXPECT_EQ(RowsToString(r), "(300)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kEmptyTable), 2)
      << r.plan->ToString();
}

TEST_F(LocalPartitionedViewTest, StaticPruningRange) {
  QueryResult r = MustExecute(
      &engine_, "SELECT COUNT(*) FROM orders_all WHERE id > 250");
  EXPECT_EQ(RowsToString(r), "(50)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kEmptyTable), 2);
}

TEST_F(LocalPartitionedViewTest, ContradictionYieldsEmpty) {
  QueryResult r = MustExecute(
      &engine_, "SELECT COUNT(*) FROM orders_all WHERE id > 300 AND id < 100");
  EXPECT_EQ(RowsToString(r), "(0)");
  // All branches contradict, so the whole union collapses to one empty
  // table (the Concat itself is pruned).
  EXPECT_GE(CountOps(r.plan, PhysicalOpKind::kEmptyTable), 1);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kConcat), 0);
}

TEST_F(LocalPartitionedViewTest, StartupFilterRuntimePruning) {
  // With a parameter the domain is unknown at compile time: each branch
  // gets a startup filter like STARTUP(@id >= lo AND @id <= hi), and at run
  // time two of the three subtrees are skipped (§4.1.5's example).
  QueryResult r = MustExecute(&engine_,
                              "SELECT amount FROM orders_all WHERE id = @id",
                              {{"@id", Value::Int64(217)}});
  EXPECT_EQ(RowsToString(r), "(434)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kStartupFilter), 3)
      << r.plan->ToString();
  EXPECT_EQ(r.exec_stats.startup_skips, 2);
}

TEST_F(LocalPartitionedViewTest, StartupFiltersDisabledAblation) {
  engine_.options()->optimizer.enable_startup_filters = false;
  QueryResult r = MustExecute(&engine_,
                              "SELECT amount FROM orders_all WHERE id = @id",
                              {{"@id", Value::Int64(217)}});
  EXPECT_EQ(RowsToString(r), "(434)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kStartupFilter), 0);
  EXPECT_EQ(r.exec_stats.startup_skips, 0);
}

TEST_F(LocalPartitionedViewTest, InsertRoutedToMember) {
  // 300 rows exist; ids 301+ violate every partition.
  QueryResult ins = MustExecute(
      &engine_, "INSERT INTO orders_all (id, amount) VALUES (50, 7)");
  EXPECT_EQ(ins.rows_affected, 1);
  QueryResult check = MustExecute(
      &engine_, "SELECT COUNT(*) FROM orders_p0 WHERE amount = 7");
  EXPECT_EQ(RowsToString(check), "(1)");

  auto bad = engine_.Execute("INSERT INTO orders_all (id, amount) VALUES "
                             "(999, 1)");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
}

// Distributed partitioned view: members on separate engines (§4.1.5's
// lineitem-by-year federation).
class DistributedPartitionedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::TpchOptions topt;
    topt.scale_factor = 0.002;
    for (int year = 1992; year <= 1994; ++year) {
      RemoteServer server =
          AttachRemoteEngine(&host_, "srv" + std::to_string(year));
      ASSERT_OK(workloads::PopulateLineitemPartition(
          server.engine.get(), topt, "lineitem_" + std::to_string(year), year,
          year));
      servers_.push_back(std::move(server));
    }
    MustExecute(&host_,
                "CREATE VIEW lineitem AS "
                "SELECT * FROM srv1992.tpch.dbo.lineitem_1992 UNION ALL "
                "SELECT * FROM srv1993.tpch.dbo.lineitem_1993 UNION ALL "
                "SELECT * FROM srv1994.tpch.dbo.lineitem_1994");
  }

  int64_t TotalMessages() const {
    int64_t total = 0;
    for (const RemoteServer& s : servers_) total += s.link->stats().messages;
    return total;
  }

  Engine host_;
  std::vector<RemoteServer> servers_;
};

TEST_F(DistributedPartitionedViewTest, PruningSkipsRemoteServers) {
  QueryResult all = MustExecute(&host_, "SELECT COUNT(*) FROM lineitem");
  int64_t total = all.rowset->rows()[0][0].int64_value();
  EXPECT_GT(total, 0);

  // A single-year query must touch exactly one server.
  for (RemoteServer& s : servers_) s.link->ResetStats();
  QueryResult r = MustExecute(
      &host_,
      "SELECT COUNT(*) FROM lineitem "
      "WHERE l_commitdate BETWEEN '1993-02-01' AND '1993-03-01'");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kEmptyTable), 2)
      << r.plan->ToString();
  EXPECT_EQ(servers_[0].link->stats().messages, 0);
  EXPECT_GT(servers_[1].link->stats().messages, 0);
  EXPECT_EQ(servers_[2].link->stats().messages, 0);
}

TEST_F(DistributedPartitionedViewTest, ParameterizedDatePrunesAtStartup) {
  // Warm-up run populates metadata/statistics caches so the measured run's
  // traffic is execution-only.
  MustExecute(&host_, "SELECT COUNT(*) FROM lineitem WHERE l_commitdate = @d",
              {{"@d", Value::Date(CivilToDays(1994, 6, 15))}});
  for (RemoteServer& s : servers_) s.link->ResetStats();
  QueryResult r = MustExecute(
      &host_, "SELECT COUNT(*) FROM lineitem WHERE l_commitdate = @d",
      {{"@d", Value::Date(CivilToDays(1994, 6, 15))}});
  EXPECT_EQ(r.exec_stats.startup_skips, 2) << r.plan->ToString();
  EXPECT_EQ(servers_[0].link->stats().messages, 0);
  EXPECT_EQ(servers_[1].link->stats().messages, 0);
  EXPECT_GT(servers_[2].link->stats().messages, 0);
}

TEST_F(DistributedPartitionedViewTest, InsertRoutesToRemoteMember) {
  QueryResult ins = MustExecute(
      &host_,
      "INSERT INTO lineitem VALUES (999999, 1, 1, 5, 100.0, '1992-07-04', "
      "'1992-07-10')");
  EXPECT_EQ(ins.rows_affected, 1);
  QueryResult check = MustExecute(
      servers_[0].engine.get(),
      "SELECT COUNT(*) FROM lineitem_1992 WHERE l_orderkey = 999999");
  EXPECT_EQ(RowsToString(check), "(1)");
}

}  // namespace
}  // namespace dhqp
