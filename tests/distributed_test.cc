// Distributed query tests: two engines joined through a linked server,
// exercising remote pushdown, access paths, parameterization and the Fig 4
// plan choice.

#include <functional>

#include "src/workloads/tpch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "remote0");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE items (id INT PRIMARY KEY, category INT, "
                "price FLOAT, label VARCHAR(20))");
    std::string sql = "INSERT INTO items VALUES ";
    for (int i = 1; i <= 500; ++i) {
      if (i > 1) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 10) + "," +
             std::to_string(i * 1.5) + ",'item" + std::to_string(i) + "')";
    }
    MustExecute(remote_.engine.get(), sql);
    MustExecute(remote_.engine.get(),
                "CREATE INDEX idx_items_cat ON items (category)");

    MustExecute(&host_,
                "CREATE TABLE categories (cid INT PRIMARY KEY, "
                "cname VARCHAR(20))");
    MustExecute(&host_,
                "INSERT INTO categories VALUES (1,'one'),(2,'two'),"
                "(3,'three'),(4,'four'),(5,'five')");
  }

  Engine host_;
  RemoteServer remote_;
};

TEST_F(DistributedTest, FourPartNameScan) {
  QueryResult r = MustExecute(
      &host_, "SELECT COUNT(*) FROM remote0.db.dbo.items");
  EXPECT_EQ(RowsToString(r), "(500)");
}

TEST_F(DistributedTest, FilterPushedToRemote) {
  QueryResult r = MustExecute(
      &host_,
      "SELECT id FROM remote0.db.dbo.items WHERE category = 3 AND price > 600 "
      "ORDER BY id");
  // category==3: ids 3,13,...,493; price > 600 means id > 400.
  EXPECT_EQ(RowsToString(r), "(403)(413)(423)(433)(443)(453)(463)(473)(483)(493)");
  // The filter ran remotely: a RemoteQuery node, and only qualifying rows
  // crossed the link.
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  EXPECT_EQ(r.exec_stats.rows_from_remote, 10);
}

TEST_F(DistributedTest, AggregatePushedToRemote) {
  QueryResult r = MustExecute(
      &host_,
      "SELECT category, COUNT(*) FROM remote0.db.dbo.items "
      "GROUP BY category ORDER BY category");
  EXPECT_EQ(r.rowset->rows().size(), 10u);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  // 10 groups shipped, not 500 rows.
  EXPECT_LE(r.exec_stats.rows_from_remote, 10);
}

TEST_F(DistributedTest, RemoteJoinLocalTable) {
  QueryResult r = MustExecute(
      &host_,
      "SELECT c.cname, COUNT(*) FROM remote0.db.dbo.items i "
      "JOIN categories c ON i.category = c.cid "
      "WHERE i.price < 100 GROUP BY c.cname ORDER BY c.cname");
  ASSERT_NE(r.rowset, nullptr);
  EXPECT_GT(r.rowset->rows().size(), 0u);
  // The remote filter must have been pushed; far fewer than 500 rows ship.
  EXPECT_LT(r.exec_stats.rows_from_remote, 100);
}

TEST_F(DistributedTest, RemoteSqlIsDialectQuoted) {
  QueryResult r = MustExecute(
      &host_, "SELECT id FROM remote0.db.dbo.items WHERE id = 42");
  ASSERT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  // Find the remote SQL text in the plan.
  PhysicalOpPtr node = r.plan;
  while (node->kind != PhysicalOpKind::kRemoteQuery) node = node->children[0];
  EXPECT_NE(node->remote_sql.find("[items]"), std::string::npos)
      << node->remote_sql;
  EXPECT_NE(node->remote_sql.find("WHERE"), std::string::npos);
}

TEST_F(DistributedTest, PushdownDisabledShipsWholeTable) {
  host_.options()->optimizer.enable_remote_pushdown = false;
  host_.options()->optimizer.enable_index_paths = false;
  host_.options()->optimizer.enable_parameterization = false;
  QueryResult r = MustExecute(
      &host_, "SELECT id FROM remote0.db.dbo.items WHERE category = 3 AND "
              "price > 600 ORDER BY id");
  EXPECT_EQ(r.rowset->rows().size(), 10u);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 0);
  EXPECT_EQ(r.exec_stats.rows_from_remote, 500);  // Whole table shipped.
}

TEST_F(DistributedTest, SimpleProviderGetsLocalFiltering) {
  // A provider with no query capability: all filtering happens at the host.
  RemoteServer simple = AttachRemoteEngine(&host_, "simplesrv", [] {
    ProviderCapabilities caps = SqlServerCapabilities();
    caps.supports_command = false;
    caps.sql_support = SqlSupportLevel::kNone;
    caps.supports_indexes = false;
    caps.supports_bookmarks = false;
    caps.provider_name = "DHQP.Simple";
    return caps;
  }());
  MustExecute(simple.engine.get(),
              "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  MustExecute(simple.engine.get(),
              "INSERT INTO t VALUES (1,10),(2,20),(3,30)");
  QueryResult r = MustExecute(
      &host_, "SELECT a FROM simplesrv.d.s.t WHERE b >= 20 ORDER BY a");
  EXPECT_EQ(RowsToString(r), "(2)(3)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 0);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteScan), 1);
}

TEST_F(DistributedTest, OrderByRemotedWithQuery) {
  // §2.1: sorts are pushable. The ORDER BY lands inside the remote
  // statement; no local Sort remains.
  QueryResult r = MustExecute(
      &host_,
      "SELECT id, price FROM remote0.db.dbo.items WHERE category = 3 "
      "ORDER BY price DESC");
  ASSERT_EQ(r.rowset->rows().size(), 50u);
  EXPECT_EQ(r.rowset->rows()[0][0].int64_value(), 493);  // Highest price.
  ASSERT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kSort), 0) << r.plan->ToString();
  PhysicalOpPtr node = r.plan;
  while (node->kind != PhysicalOpKind::kRemoteQuery) node = node->children[0];
  EXPECT_NE(node->remote_sql.find("ORDER BY"), std::string::npos)
      << node->remote_sql;
  EXPECT_NE(node->remote_sql.find("DESC"), std::string::npos);
}

TEST_F(DistributedTest, Figure4PlanChoice) {
  // Example 1 (§4.1.2): customer and supplier live on remote0, nation is
  // local. The optimizer should prefer joining supplier⋈nation before
  // involving customer, rather than shipping customer⋈supplier (a near
  // cross product on nationkey) across the network.
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "remote0");
  workloads::TpchOptions topt;
  topt.scale_factor = 0.01;
  topt.include_orders = false;
  ASSERT_OK(workloads::PopulateTpch(remote.engine.get(), topt));
  // Local nation table.
  MustExecute(&host,
              "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, "
              "n_name VARCHAR(25), n_regionkey INT)");
  {
    QueryResult all = MustExecute(remote.engine.get(),
                                  "SELECT * FROM nation");
    for (const Row& row : all.rowset->rows()) {
      MustExecute(&host, "INSERT INTO nation VALUES (" +
                             row[0].ToString() + ",'" + row[1].ToString() +
                             "'," + row[2].ToString() + ")");
    }
  }
  QueryResult r = MustExecute(
      &host,
      "SELECT c.c_name, c.c_address, c.c_phone "
      "FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, "
      "nation n "
      "WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey");
  ASSERT_NE(r.rowset, nullptr);
  // The chosen plan must NOT push the customer×supplier join to the remote
  // server: no remote query containing both tables.
  std::function<bool(const PhysicalOpPtr&)> has_cross_push =
      [&](const PhysicalOpPtr& plan) {
        if (plan->kind == PhysicalOpKind::kRemoteQuery &&
            plan->remote_sql.find("customer") != std::string::npos &&
            plan->remote_sql.find("supplier") != std::string::npos) {
          return true;
        }
        for (const auto& c : plan->children) {
          if (has_cross_push(c)) return true;
        }
        return false;
      };
  EXPECT_FALSE(has_cross_push(r.plan)) << r.plan->ToString();
}

}  // namespace
}  // namespace dhqp
