// Live request monitoring (sys..dm_exec_requests), per-operator memory
// accounting, and cross-engine trace stitching: a monitor thread watches a
// deliberately slow distributed query mid-flight, progress counters must
// only grow, memory charges must settle to zero at completion, and the
// merged Chrome trace must carry both coordinator and member spans under
// one activity id.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/trace.h"
#include "src/core/governor.h"
#include "src/executor/profile.h"
#include "src/sysview/requests.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

int64_t ColI(const Schema& schema, const Row& row, const char* name) {
  int ord = schema.FindColumn(name);
  EXPECT_GE(ord, 0) << "column " << name;
  return row[static_cast<size_t>(ord)].int64_value();
}

std::string ColS(const Schema& schema, const Row& row, const char* name) {
  int ord = schema.FindColumn(name);
  EXPECT_GE(ord, 0) << "column " << name;
  return row[static_cast<size_t>(ord)].string_value();
}

EngineOptions HostOptions() {
  EngineOptions options;
  options.name = "host";
  return options;
}

class RequestsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE big (a INT PRIMARY KEY, b INT)");
    int next = 0;
    for (int batch = 0; batch < 40; ++batch) {
      std::string values;
      for (int i = 0; i < 250; ++i, ++next) {
        if (i > 0) values += ",";
        values += "(" + std::to_string(next) + "," +
                  std::to_string(next % 97) + ")";
      }
      MustExecute(remote_.engine.get(), "INSERT INTO big VALUES " + values);
    }
    // A local dimension table: joining it against the remote stream pins
    // the join + sort on the coordinator (they cannot be pushed down), so
    // host-side operators hold observable memory mid-flight.
    std::string dim_values;
    for (int v = 0; v < 97; ++v) {
      if (v > 0) dim_values += ",";
      dim_values += "(" + std::to_string(v) + "," + std::to_string(v * 3) + ")";
    }
    MustExecute(&host_, "CREATE TABLE dim (v INT PRIMARY KEY, w INT)");
    MustExecute(&host_, "INSERT INTO dim VALUES " + dim_values);
  }

  Engine host_{HostOptions()};
  RemoteServer remote_;
};

// Self-exclusion: a scan of dm_exec_requests is itself an in-flight request
// at snapshot time, but must not appear in its own result (two-layer sys
// gating plus the activity-id backstop in FillRequests).
TEST_F(RequestsTest, DmvScanDoesNotListItself) {
  QueryResult r = MustExecute(
      &host_, "SELECT request_id, statement FROM sys..dm_exec_requests");
  EXPECT_EQ(r.rowset->rows().size(), 0u) << RowsToString(r);
}

// The headline scenario: while a seeded-slow distributed ORDER BY runs on a
// worker thread, dm_exec_requests (read through the catalog's system
// session — concurrent Execute on one engine is not supported) shows the
// statement with monotonically non-decreasing rows_processed, non-zero
// wait and memory columns mid-flight, and a percent_complete within
// bounds; once the query finishes, its memory charge settles to zero.
TEST_F(RequestsTest, LiveDistributedQueryVisibleWithMonotonicProgress) {
  // Every message on the rsrv link pays a spike, so the remote drain is
  // slow enough to observe while the host-side sort buffers rows.
  remote_.injector->AddLatencySpike(/*after=*/0, /*count=*/1 << 20,
                                    /*extra_us=*/2000);
  remote_.link->set_enforce_delays(true);

  std::atomic<bool> done{false};
  std::thread worker([&] {
    MustExecute(&host_,
                "SELECT big.a, big.b, dim.w FROM rsrv.d.s.big JOIN dim "
                "ON big.b = dim.v ORDER BY big.b, big.a");
    done.store(true, std::memory_order_release);
  });

  std::vector<int64_t> rows_seen;
  bool saw_wait = false;
  bool saw_memory = false;
  std::shared_ptr<sysview::RequestState> observed;
  while (!done.load(std::memory_order_acquire)) {
    auto session = host_.catalog()->SystemSession();
    ASSERT_OK(session.status());
    auto rowset = (*session)->OpenRowset("dm_exec_requests");
    ASSERT_OK(rowset.status());
    const Schema schema = (*rowset)->schema();
    auto rows = DrainRowset(rowset->get());
    ASSERT_OK(rows.status());
    for (const Row& row : *rows) {
      if (ColS(schema, row, "engine") != "host") continue;
      rows_seen.push_back(ColI(schema, row, "rows_processed"));
      EXPECT_GE(ColI(schema, row, "dop"), 1);
      EXPECT_GE(ColI(schema, row, "elapsed_ns"), 0);
      EXPECT_NE(ColS(schema, row, "statement").find("ORDER BY"),
                std::string::npos);
      const int64_t pct = ColI(schema, row, "percent_complete");
      EXPECT_GE(pct, 0);
      EXPECT_LE(pct, 100);
      if (ColI(schema, row, "wait_ns") > 0) saw_wait = true;
      if (ColI(schema, row, "memory_bytes") > 0) saw_memory = true;
    }
    if (observed == nullptr) {
      for (const std::shared_ptr<sysview::RequestState>& state :
           sysview::RequestRegistry::Global().Snapshot()) {
        if (state->engine == "host" &&
            !state->exclude.load(std::memory_order_relaxed)) {
          observed = state;
        }
      }
    }
  }
  worker.join();

  ASSERT_FALSE(rows_seen.empty()) << "query never observed mid-flight";
  for (size_t i = 1; i < rows_seen.size(); ++i) {
    EXPECT_GE(rows_seen[i], rows_seen[i - 1]) << "at snapshot " << i;
  }
  EXPECT_TRUE(saw_wait) << "no snapshot showed live wait time";
  EXPECT_TRUE(saw_memory) << "no snapshot showed live memory";

  // A snapshot taken mid-completion stays valid: the shared state outlives
  // unregistration, reports the terminal phase, and every memory charge
  // made on the query's behalf was released.
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(observed->Phase(), sysview::RequestPhase::kFinished);
  EXPECT_EQ(observed->memory.current(), 0);
  EXPECT_GT(observed->memory.peak(), 0);
  EXPECT_GT(waits::Snapshot(observed->waits).total_ns(), 0);

  // The registry dropped the finished request.
  QueryResult after = MustExecute(
      &host_, "SELECT request_id FROM sys..dm_exec_requests");
  EXPECT_EQ(after.rowset->rows().size(), 0u);
}

// Memory accounting surfaces per operator: EXPLAIN ANALYZE prints a mem=
// figure for buffering operators, and dm_exec_operator_stats exposes the
// same peak as a column.
TEST_F(RequestsTest, OperatorMemorySurfacesInExplainAnalyzeAndDmv) {
  QueryResult analyzed = MustExecute(
      &host_, "EXPLAIN ANALYZE SELECT a, b FROM rsrv.d.s.big ORDER BY b, a");
  std::string plan_text;
  for (const Row& row : analyzed.rowset->rows()) {
    plan_text += row[0].string_value() + "\n";
  }
  EXPECT_NE(plan_text.find("mem="), std::string::npos) << plan_text;

  MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.big ORDER BY b, a");
  QueryResult stats = MustExecute(
      &host_,
      "SELECT operator, memory_bytes FROM sys..dm_exec_operator_stats");
  int64_t max_mem = 0;
  for (size_t i = 0; i < stats.rowset->rows().size(); ++i) {
    const Row& row = stats.rowset->rows()[i];
    max_mem = std::max(max_mem,
                       ColI(stats.rowset->schema(), row, "memory_bytes"));
  }
  EXPECT_GT(max_mem, 0) << "no operator reported peak memory";
}

// Cross-engine trace stitching: after a distributed query runs under
// tracing, the coordinator pulls members' dm_trace_spans through the sys
// linked-server path and renders one Chrome trace whose process tracks
// cover both engines, keyed by the query's activity id.
TEST_F(RequestsTest, MergedChromeTraceStitchesCoordinatorAndMemberSpans) {
  trace::Tracer::Global().Enable();
  QueryResult r =
      MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.big WHERE a < 50");
  trace::Tracer::Global().Disable();
  ASSERT_FALSE(r.activity_id.empty());

  auto merged = host_.MergedChromeTrace(r.activity_id);
  ASSERT_OK(merged.status());
  const std::string& json = *merged;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 64);
  // One process track per engine: both the coordinator and the member
  // contributed at least one span under this activity id.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
  EXPECT_NE(json.find("\"rsrv\""), std::string::npos);
  EXPECT_NE(json.find(r.activity_id), std::string::npos);
}

// Memory settles to zero for a statement that spilled: the spill files'
// buffers and the survivors of each Grace partition all release, the
// memory grant is returned, and the request's grant columns clear.
TEST_F(RequestsTest, SpilledStatementMemorySettlesToZero) {
  host_.options()->max_server_memory_bytes = int64_t{256} << 20;
  host_.options()->max_grant_per_query_bytes = 64 << 10;

  // Slow the remote stream down so the monitor can capture the request
  // state mid-flight (the registry drops it at completion).
  remote_.injector->AddLatencySpike(/*after=*/2, /*count=*/6,
                                    /*extra_us=*/30000);
  remote_.link->set_enforce_delays(true);

  // Joining the local dimension pins the join + sort on the coordinator —
  // a pure remote ORDER BY would be pushed down whole and spill nothing
  // here.
  QueryResult result;
  std::thread worker([&] {
    result = MustExecute(&host_,
                         "SELECT big.a, big.b, dim.w FROM rsrv.d.s.big "
                         "JOIN dim ON big.b = dim.v ORDER BY big.b, big.a");
  });
  std::shared_ptr<sysview::RequestState> observed;
  while (observed == nullptr) {
    for (const std::shared_ptr<sysview::RequestState>& state :
         sysview::RequestRegistry::Global().Snapshot()) {
      if (state->engine == "host" &&
          !state->exclude.load(std::memory_order_relaxed)) {
        observed = state;
      }
    }
  }
  worker.join();
  remote_.link->set_enforce_delays(false);
  remote_.injector->Reset(0);

  EXPECT_GT(static_cast<int64_t>(result.exec_stats.spills), 0)
      << "64 KiB grant did not force a spill";
  EXPECT_EQ(observed->Phase(), sysview::RequestPhase::kFinished);
  EXPECT_EQ(observed->memory.current(), 0);
  EXPECT_GT(observed->memory.peak(), 0);
  EXPECT_EQ(observed->requested_grant_bytes.load(std::memory_order_relaxed),
            0);
  EXPECT_EQ(observed->granted_bytes.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);
}

// Memory settles to zero for a statement that queued for a grant and then
// failed: the test holds the whole budget (forcing the worker statement
// into the kQueued phase), releases it, and the admitted statement dies on
// a downed link — the grant and every memory charge must still unwind.
TEST_F(RequestsTest, QueuedThenFailedStatementSettlesToZero) {
  const int64_t kBudget = int64_t{256} << 10;
  host_.options()->max_server_memory_bytes = kBudget;
  const std::string sql = "SELECT a, b FROM rsrv.d.s.big ORDER BY b, a";

  // Prime the plan cache so the statement under test binds nothing over
  // the link before admission — its first link traffic is execution-phase,
  // strictly after the queued wait we script below.
  MustExecute(&host_, sql);

  governor::GovernorOptions gopts;
  gopts.max_server_memory_bytes = kBudget;
  governor::MemoryGrant held = governor::Governor::Global().Acquire(
      gopts, /*estimate_bytes=*/64 << 20, "holder", "act-hold", "HOLD", 1);
  ASSERT_TRUE(held.active());

  remote_.injector->LinkDownAfter(/*after=*/0);
  Status failure = Status::OK();
  std::thread worker([&] {
    auto result = host_.Execute(sql);
    failure = result.status();
  });

  // Deterministically queued: the held grant owns the entire budget.
  std::shared_ptr<sysview::RequestState> observed;
  while (observed == nullptr) {
    for (const std::shared_ptr<sysview::RequestState>& state :
         sysview::RequestRegistry::Global().Snapshot()) {
      if (state->engine == "host" &&
          state->Phase() == sysview::RequestPhase::kQueued) {
        observed = state;
      }
    }
  }
  held.Release();
  worker.join();
  remote_.injector->Reset(0);

  EXPECT_FALSE(failure.ok()) << "link-down fault never fired";
  EXPECT_EQ(observed->memory.current(), 0);
  EXPECT_EQ(observed->requested_grant_bytes.load(std::memory_order_relaxed),
            0);
  EXPECT_EQ(observed->granted_bytes.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);
  EXPECT_EQ(governor::Governor::Global().queued_statements(), 0);

  // The engine recovers once the link heals.
  host_.options()->max_server_memory_bytes = 0;
  MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.big ORDER BY b, a");
}

}  // namespace
}  // namespace dhqp
