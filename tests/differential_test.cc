// Differential property testing: randomly generated distributed queries are
// executed twice — once with the full optimizer (pushdown, index paths,
// parameterization, phases, caching) and once with every optimization
// ablated — and must produce identical result multisets. This is the
// broadest correctness net over the optimizer/executor/decoder stack:
// whatever plan shape wins, the answer must not change.

#include <algorithm>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    // FROM: one to three of {t1, t2 (local), rsrv...r (remote)}.
    struct Src {
      const char* sql;
      const char* alias;
    };
    std::vector<Src> pool = {{"t1", "t1"}, {"t2", "t2"},
                             {"rsrv.db.dbo.r", "r"}};
    int n = static_cast<int>(rng_.Uniform(1, 3));
    std::vector<Src> from;
    for (int i = 0; i < n; ++i) {
      from.push_back(pool[static_cast<size_t>(rng_.Uniform(0, 2))]);
      // Deduplicate aliases.
      for (int j = 0; j < i; ++j) {
        if (std::string(from.back().alias) == from[static_cast<size_t>(j)].alias) {
          from.pop_back();
          --i;
          break;
        }
      }
      n = std::min<int>(n, 3);
    }

    std::string sql = "SELECT ";
    bool aggregate = rng_.Uniform(0, 3) == 0;
    std::string group_col = std::string(from[0].alias) + ".a";
    if (aggregate) {
      sql += group_col + ", COUNT(*), SUM(" + from[0].alias + ".a)";
    } else {
      sql += "*";
    }
    sql += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i) sql += ", ";
      sql += std::string(from[i].sql) + " " +
             (std::string(from[i].alias) == from[i].sql ? "" : from[i].alias);
    }
    // WHERE: join conjuncts chaining on `a` plus random range predicates.
    std::vector<std::string> conjuncts;
    for (size_t i = 1; i < from.size(); ++i) {
      conjuncts.push_back(std::string(from[i - 1].alias) + ".a = " +
                          from[i].alias + ".a");
    }
    int preds = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < preds; ++i) {
      const Src& src = from[static_cast<size_t>(
          rng_.Uniform(0, static_cast<int64_t>(from.size()) - 1))];
      const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
      conjuncts.push_back(std::string(src.alias) + ".a " +
                          ops[rng_.Uniform(0, 5)] + " " +
                          std::to_string(rng_.Uniform(0, 120)));
    }
    if (!conjuncts.empty()) {
      sql += " WHERE ";
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i) sql += " AND ";
        sql += conjuncts[i];
      }
    }
    if (aggregate) {
      sql += " GROUP BY " + group_col;
    }
    return sql;
  }

 private:
  Rng rng_;
};

// Sorted multiset fingerprint of a result.
std::string Fingerprint(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Row& row : r.rowset->rows()) rows.push_back(RowToString(row));
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& s : rows) out += s + "\n";
  return out;
}

OptimizerOptions EverythingOff() {
  OptimizerOptions off;
  off.enable_join_reorder = false;
  off.enable_remote_pushdown = false;
  off.enable_parameterization = false;
  off.enable_spool_enforcer = false;
  off.enable_remote_statistics = false;
  off.enable_startup_filters = false;
  off.enable_static_pruning = false;
  off.enable_index_paths = false;
  off.enable_fulltext_index = false;
  off.enable_locality_grouping = false;
  off.multi_phase = false;
  return off;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, FullVsAblatedOptimizerAgree) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "rsrv");
  Rng data_rng(GetParam() * 7919 + 13);

  MustExecute(&host, "CREATE TABLE t1 (a INT PRIMARY KEY, b INT, c INT)");
  MustExecute(&host, "CREATE TABLE t2 (a INT PRIMARY KEY, d INT)");
  MustExecute(remote.engine.get(),
              "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
  auto fill = [&](Engine* engine, const std::string& table, int rows,
                  int cols) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    std::set<int64_t> used;
    for (int i = 0; i < rows; ++i) {
      int64_t key;
      do {
        key = data_rng.Uniform(0, 150);
      } while (!used.insert(key).second);
      if (i) sql += ",";
      sql += "(" + std::to_string(key);
      for (int c = 1; c < cols; ++c) {
        sql += "," + std::to_string(data_rng.Uniform(-5, 40));
      }
      sql += ")";
    }
    MustExecute(engine, sql);
  };
  fill(&host, "t1", 60, 3);
  fill(&host, "t2", 40, 2);
  fill(remote.engine.get(), "r", 80, 2);

  QueryGenerator generator(GetParam());
  for (int q = 0; q < 25; ++q) {
    std::string sql = generator.Next();
    host.options()->optimizer = OptimizerOptions{};
    QueryResult full = MustExecute(&host, sql);
    host.options()->optimizer = EverythingOff();
    QueryResult ablated = MustExecute(&host, sql);
    EXPECT_EQ(Fingerprint(full), Fingerprint(ablated))
        << sql << "\nfull plan:\n"
        << full.plan->ToString() << "\nablated plan:\n"
        << ablated.plan->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dhqp
