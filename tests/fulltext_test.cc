// Full-text search service tests: stemming, CONTAINS query language,
// inverted index, IFilters, and the SQL integration of §2.3 / Fig 2.

#include "src/fulltext/contains_query.h"
#include "src/fulltext/inverted_index.h"
#include "src/fulltext/stemmer.h"
#include "src/workloads/documents.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

using fulltext::Document;
using fulltext::IFilterRegistry;
using fulltext::InvertedIndex;
using fulltext::MatchesTextQuery;
using fulltext::ParseContainsQuery;
using fulltext::Stem;
using fulltext::TokenizeText;

TEST(StemmerTest, InflectionalForms) {
  // §2.3: "'runner', 'run', and 'ran' can all be equivalent".
  EXPECT_EQ(Stem("run"), "run");
  EXPECT_EQ(Stem("ran"), "run");
  EXPECT_EQ(Stem("runner"), "run");
  EXPECT_EQ(Stem("running"), "run");
  EXPECT_EQ(Stem("Databases"), "database");
  EXPECT_EQ(Stem("queries"), "query");
  EXPECT_EQ(Stem("wrote"), "write");
  EXPECT_EQ(Stem("written"), "write");
}

TEST(StemmerTest, TokenizeLowercasesAndSplits) {
  auto tokens = TokenizeText("The Quick-Brown FOX, 42 jumps!");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "quick");
  EXPECT_EQ(tokens[4], "42");
}

TEST(ContainsQueryTest, ParsesBooleanAndPhrase) {
  auto q = ParseContainsQuery("\"Parallel database\" OR \"heterogeneous query\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->kind, fulltext::ContainsNode::Kind::kOr);
}

TEST(ContainsQueryTest, RejectsMalformed) {
  EXPECT_FALSE(ParseContainsQuery("\"unterminated").ok());
  EXPECT_FALSE(ParseContainsQuery("AND").ok());
  EXPECT_FALSE(ParseContainsQuery("(a OR b").ok());
}

TEST(ContainsQueryTest, DirectTextMatching) {
  const std::string text =
      "we built a parallel database engine for heterogeneous queries";
  EXPECT_TRUE(MatchesTextQuery(text, "\"parallel database\""));
  EXPECT_TRUE(MatchesTextQuery(text, "heterogeneous AND engine"));
  EXPECT_FALSE(MatchesTextQuery(text, "\"database parallel\""));
  EXPECT_TRUE(MatchesTextQuery(text, "missing OR engine"));
  EXPECT_FALSE(MatchesTextQuery(text, "engine AND NOT database"));
  // Inflectional: text says "queries", the query says "query".
  EXPECT_TRUE(MatchesTextQuery(text, "query"));
  // Proximity.
  EXPECT_TRUE(MatchesTextQuery(text, "parallel NEAR engine"));
}

TEST(InvertedIndexTest, RankingPrefersHigherTf) {
  InvertedIndex index;
  index.AddDocument(1, "database database database optimization");
  index.AddDocument(2, "database once, other words entirely here");
  index.AddDocument(3, "nothing relevant at all");
  auto q = ParseContainsQuery("database");
  ASSERT_TRUE(q.ok());
  auto matches = index.Query(**q);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].doc_id, 1);
  EXPECT_GT(matches[0].rank, matches[1].rank);
}

TEST(InvertedIndexTest, PhraseAndNear) {
  InvertedIndex index;
  index.AddDocument(1, "parallel database systems are fast");
  index.AddDocument(2, "database with parallel hardware");
  auto phrase = ParseContainsQuery("\"parallel database\"");
  ASSERT_TRUE(phrase.ok());
  auto matches = index.Query(**phrase);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].doc_id, 1);

  auto near = ParseContainsQuery("parallel NEAR hardware");
  ASSERT_TRUE(near.ok());
  matches = index.Query(**near);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].doc_id, 2);
}

TEST(IFilterTest, ExtractsPerFormat) {
  IFilterRegistry filters;
  Document txt{"a.txt", "txt", "plain words", 0, 0};
  Document html{"b.html", "html", fulltext::EncodeHtml("inside markup"), 0, 0};
  Document doc{"c.doc", "doc", fulltext::EncodeDoc("word text"), 0, 0};
  Document pdf{"d.pdf", "pdf", fulltext::EncodePdf("pdf text"), 0, 0};
  Document zip{"e.zip", "zip", "PK...", 0, 0};
  EXPECT_EQ(*filters.Extract(txt), "plain words");
  EXPECT_NE(filters.Extract(html)->find("inside markup"), std::string::npos);
  EXPECT_NE(filters.Extract(doc)->find("word text"), std::string::npos);
  EXPECT_NE(filters.Extract(pdf)->find("pdf text"), std::string::npos);
  EXPECT_FALSE(filters.Extract(zip).ok());  // No IFilter installed (§2.2).
}

TEST(FullTextServiceTest, FileSystemCatalog) {
  // §2.2: a catalog over a document repository; un-filterable formats are
  // skipped.
  fulltext::FullTextService service;
  ASSERT_OK(service.CreateCatalog("DQLiterature", "SCOPE()", "Path", "body"));
  workloads::CorpusOptions copt;
  copt.num_documents = 200;
  auto docs = workloads::GenerateCorpus(copt);
  int skipped = 0;
  ASSERT_OK(service.IndexDocuments("DQLiterature", docs, &skipped));
  EXPECT_GT(skipped, 0);  // zip files have no IFilter.
  auto matches = service.QueryCatalog(
      "DQLiterature", "\"parallel database\" OR \"heterogeneous query\"");
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_GT(matches->size(), 0u);
  // Ranks descend.
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i - 1].second, (*matches)[i].second);
  }
}

// §2.3 / Fig 2: CONTAINS in SQL answered via the full-text index, joined
// back to the base table.
class FullTextSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_,
                "CREATE TABLE articles (id INT PRIMARY KEY, "
                "title VARCHAR(60), body TEXT)");
    MustExecute(
        &engine_,
        "INSERT INTO articles VALUES "
        "(1, 'dbms', 'parallel database systems run distributed queries'), "
        "(2, 'cooking', 'how to run a kitchen with parallel pans'), "
        "(3, 'search', 'heterogeneous query processing over providers'), "
        "(4, 'sports', 'the runner ran a marathon')");
  }

  Engine engine_;
};

TEST_F(FullTextSqlTest, ContainsWithoutIndexEvaluatesDirectly) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM articles WHERE CONTAINS(body, '\"parallel database\"')");
  EXPECT_EQ(RowsToString(r), "(1)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kFullTextLookup), 0);
}

TEST_F(FullTextSqlTest, ContainsUsesFullTextIndexWhenPresent) {
  // Enough rows that scanning + matching text per row costs more than the
  // index lookup (on the 4-row table the naive scan correctly wins).
  for (int i = 0; i < 60; ++i) {
    MustExecute(&engine_, "INSERT INTO articles VALUES (" +
                              std::to_string(100 + i) +
                              ", 'filler', 'unrelated filler words here')");
  }
  ASSERT_OK(engine_.CreateFullTextIndex("ft_articles", "articles", "id",
                                        "body"));
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM articles WHERE "
      "CONTAINS(body, '\"parallel database\" OR \"heterogeneous query\"') "
      "ORDER BY id");
  EXPECT_EQ(RowsToString(r), "(1)(3)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kFullTextLookup), 1)
      << r.plan->ToString();
}

TEST_F(FullTextSqlTest, InflectionalSqlQuery) {
  ASSERT_OK(engine_.CreateFullTextIndex("ft2", "articles", "id", "body"));
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM articles WHERE CONTAINS(body, 'running') ORDER BY id");
  // 'run' appears in 1 and 2; 'runner'/'ran' in 4 — all stem to 'run'.
  EXPECT_EQ(RowsToString(r), "(1)(2)(4)");
}

TEST_F(FullTextSqlTest, ContainsCombinedWithRelationalPredicates) {
  ASSERT_OK(engine_.CreateFullTextIndex("ft3", "articles", "id", "body"));
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM articles WHERE CONTAINS(body, 'parallel') AND id > 1");
  EXPECT_EQ(RowsToString(r), "(2)");
}

}  // namespace
}  // namespace dhqp
