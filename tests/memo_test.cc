// Memo unit tests (§4.1.1): structural deduplication, group properties
// (cardinality, locality, constraint domains, contradiction).

#include <gtest/gtest.h>

#include "src/optimizer/memo.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

class MemoTest : public ::testing::Test {
 protected:
  MemoTest() : catalog_(&storage_) {}

  void SetUp() override {
    Schema schema;
    schema.AddColumn(ColumnDef{"k", DataType::kInt64, false});
    schema.AddColumn(ColumnDef{"v", DataType::kInt64, true});
    Table* t = storage_.CreateTable("t", schema).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(t->Insert({Value::Int64(i), Value::Int64(i % 7)}).ok());
    }
    ctx_ = std::make_unique<OptimizerContext>(&catalog_, &registry_,
                                              OptimizerOptions{});
  }

  // A fresh Get over table t with new column ids.
  LogicalOpPtr NewGet(const std::string& alias, int source_id = kLocalSource) {
    ObjectName name;
    name.table = "t";
    ResolvedTable resolved = catalog_.ResolveTable(name).value();
    resolved.source_id = source_id;
    std::vector<int> ids = {
        registry_.Add(alias, "k", DataType::kInt64),
        registry_.Add(alias, "v", DataType::kInt64)};
    last_cols_ = ids;
    return MakeGet(resolved, alias, ids);
  }

  StorageEngine storage_;
  Catalog catalog_;
  ColumnRegistry registry_;
  std::unique_ptr<OptimizerContext> ctx_;
  std::vector<int> last_cols_;
};

TEST_F(MemoTest, IdenticalTreesShareGroups) {
  Memo memo(ctx_.get());
  LogicalOpPtr get = NewGet("a");
  LogicalOpPtr f1 = MakeFilter(get, MakeComparison(">", MakeColumn(last_cols_[0], DataType::kInt64, "a.k"), MakeLiteral(Value::Int64(10))));
  int g1 = memo.InsertTree(f1);
  int g2 = memo.InsertTree(f1);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(memo.num_exprs(), 2);  // One Get, one Filter.
}

TEST_F(MemoTest, DistinctInstancesOfSameTableDoNotMerge) {
  Memo memo(ctx_.get());
  int g1 = memo.InsertTree(NewGet("a"));
  int g2 = memo.InsertTree(NewGet("a"));  // Fresh column ids = new instance.
  EXPECT_NE(g1, g2);
}

TEST_F(MemoTest, GroupCardinalityFromTable) {
  Memo memo(ctx_.get());
  int gid = memo.InsertTree(NewGet("a"));
  EXPECT_DOUBLE_EQ(memo.group(gid).props.cardinality, 100.0);
  EXPECT_EQ(memo.group(gid).props.locality, kLocalSource);
}

TEST_F(MemoTest, FilterDomainsAndContradiction) {
  Memo memo(ctx_.get());
  LogicalOpPtr get = NewGet("a");
  int k = last_cols_[0];
  // k > 50 AND k < 20 contradicts.
  LogicalOpPtr filter = MakeFilter(
      get, MakeAnd(MakeComparison(">", MakeColumn(k, DataType::kInt64, "k"),
                                  MakeLiteral(Value::Int64(50))),
                   MakeComparison("<", MakeColumn(k, DataType::kInt64, "k"),
                                  MakeLiteral(Value::Int64(20)))));
  int gid = memo.InsertTree(filter);
  EXPECT_TRUE(memo.group(gid).props.contradiction);
  EXPECT_DOUBLE_EQ(memo.group(gid).props.cardinality, 0.0);
}

TEST_F(MemoTest, JoinLocalityCombines) {
  Memo memo(ctx_.get());
  LogicalOpPtr local = NewGet("a");
  LogicalOpPtr remote = NewGet("b", /*source_id=*/0);
  int mixed = memo.InsertTree(
      MakeJoin(JoinType::kCross, local, remote, nullptr));
  EXPECT_EQ(memo.group(mixed).props.locality, kMixedLocality);

  LogicalOpPtr r1 = NewGet("c", 0);
  LogicalOpPtr r2 = NewGet("d", 0);
  int pure = memo.InsertTree(MakeJoin(JoinType::kCross, r1, r2, nullptr));
  EXPECT_EQ(memo.group(pure).props.locality, 0);
}

TEST_F(MemoTest, ExtractTreeRoundTrips) {
  Memo memo(ctx_.get());
  LogicalOpPtr get = NewGet("a");
  LogicalOpPtr filter = MakeFilter(
      get, MakeComparison("=", MakeColumn(last_cols_[1], DataType::kInt64, "v"),
                          MakeLiteral(Value::Int64(3))));
  int gid = memo.InsertTree(filter);
  LogicalOpPtr extracted = memo.ExtractTree(gid);
  ASSERT_EQ(extracted->kind, LogicalOpKind::kFilter);
  ASSERT_EQ(extracted->children.size(), 1u);
  EXPECT_EQ(extracted->children[0]->kind, LogicalOpKind::kGet);
  EXPECT_EQ(extracted->LocalFingerprint(), filter->LocalFingerprint());
}

}  // namespace
}  // namespace dhqp
