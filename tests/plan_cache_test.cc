// Plan cache tests: reuse, parameter sensitivity via startup filters,
// invalidation on DDL and option changes.

#include "tests/test_util.h"

namespace dhqp {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_, "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
    MustExecute(&engine_, "INSERT INTO t VALUES (1,10),(2,20),(3,30)");
  }
  Engine engine_;
};

TEST_F(PlanCacheTest, RepeatedQueryReturnsSameResults) {
  for (int i = 0; i < 3; ++i) {
    QueryResult r = MustExecute(&engine_, "SELECT v FROM t WHERE id = 2");
    EXPECT_EQ(RowsToString(r), "(20)");
  }
}

TEST_F(PlanCacheTest, CachedParameterizedPlanSeesFreshParams) {
  for (int id = 1; id <= 3; ++id) {
    QueryResult r = MustExecute(&engine_, "SELECT v FROM t WHERE id = @id",
                                {{"@id", Value::Int64(id)}});
    EXPECT_EQ(RowsToString(r), "(" + std::to_string(id * 10) + ")");
  }
}

TEST_F(PlanCacheTest, DdlInvalidatesCache) {
  QueryResult before = MustExecute(&engine_, "SELECT COUNT(*) FROM t WHERE v > 15");
  EXPECT_EQ(RowsToString(before), "(2)");
  // New index changes the plan space; the cached plan must not block it.
  MustExecute(&engine_, "CREATE INDEX iv ON t (v)");
  QueryResult after = MustExecute(&engine_, "SELECT COUNT(*) FROM t WHERE v > 15");
  EXPECT_EQ(RowsToString(after), "(2)");
}

TEST_F(PlanCacheTest, OptionChangesMissTheCache) {
  QueryResult with_defaults = MustExecute(&engine_, "SELECT v FROM t WHERE id = 2");
  EXPECT_EQ(RowsToString(with_defaults), "(20)");
  engine_.options()->optimizer.enable_index_paths = false;
  QueryResult without_index = MustExecute(&engine_, "SELECT v FROM t WHERE id = 2");
  EXPECT_EQ(RowsToString(without_index), "(20)");
  // Different options produced a different (index-free) plan.
  EXPECT_EQ(CountOps(without_index.plan, PhysicalOpKind::kIndexRange), 0);
}

TEST_F(PlanCacheTest, DataChangesAreVisibleThroughCachedPlans) {
  QueryResult before = MustExecute(&engine_, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(RowsToString(before), "(3)");
  MustExecute(&engine_, "INSERT INTO t VALUES (4, 40)");
  QueryResult after = MustExecute(&engine_, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(RowsToString(after), "(4)");
}

TEST_F(PlanCacheTest, CacheDisabledStillCorrect) {
  engine_.options()->enable_plan_cache = false;
  for (int i = 0; i < 2; ++i) {
    QueryResult r = MustExecute(&engine_, "SELECT v FROM t WHERE id = 1");
    EXPECT_EQ(RowsToString(r), "(10)");
  }
}

}  // namespace
}  // namespace dhqp
