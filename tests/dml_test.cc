// DELETE / UPDATE DML tests.

#include "tests/test_util.h"

namespace dhqp {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_,
                "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, "
                "salary FLOAT)");
    MustExecute(&engine_,
                "INSERT INTO emp VALUES (1,10,100.0),(2,10,80.0),"
                "(3,20,120.0),(4,20,90.0),(5,30,70.0)");
  }
  Engine engine_;
};

TEST_F(DmlTest, DeleteWithPredicate) {
  QueryResult r = MustExecute(&engine_, "DELETE FROM emp WHERE dept = 10");
  EXPECT_EQ(r.rows_affected, 2);
  QueryResult check = MustExecute(&engine_, "SELECT COUNT(*) FROM emp");
  EXPECT_EQ(RowsToString(check), "(3)");
  // Index consistency after delete.
  QueryResult by_id = MustExecute(&engine_, "SELECT id FROM emp WHERE id = 1");
  EXPECT_EQ(by_id.rowset->rows().size(), 0u);
}

TEST_F(DmlTest, DeleteAllRows) {
  QueryResult r = MustExecute(&engine_, "DELETE FROM emp");
  EXPECT_EQ(r.rows_affected, 5);
  EXPECT_EQ(RowsToString(MustExecute(&engine_, "SELECT COUNT(*) FROM emp")),
            "(0)");
}

TEST_F(DmlTest, DeleteWithParameter) {
  QueryResult r = MustExecute(&engine_, "DELETE FROM emp WHERE salary < @s",
                              {{"@s", Value::Double(85.0)}});
  EXPECT_EQ(r.rows_affected, 2);  // 80 and 70.
}

TEST_F(DmlTest, UpdateSimple) {
  QueryResult r = MustExecute(
      &engine_, "UPDATE emp SET salary = salary * 2 WHERE dept = 10");
  EXPECT_EQ(r.rows_affected, 2);
  QueryResult check = MustExecute(
      &engine_, "SELECT SUM(salary) FROM emp WHERE dept = 10");
  EXPECT_EQ(RowsToString(check), "(360)");
}

TEST_F(DmlTest, UpdateMultipleColumns) {
  QueryResult r = MustExecute(
      &engine_, "UPDATE emp SET dept = 99, salary = 1.0 WHERE id = 5");
  EXPECT_EQ(r.rows_affected, 1);
  QueryResult check = MustExecute(
      &engine_, "SELECT dept, salary FROM emp WHERE id = 5");
  EXPECT_EQ(RowsToString(check), "(99, 1)");
}

TEST_F(DmlTest, UpdateUniqueViolationRestoresRow) {
  auto bad = engine_.Execute("UPDATE emp SET id = 1 WHERE id = 2");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
  // Row 2 is still present and unchanged.
  QueryResult check = MustExecute(
      &engine_, "SELECT salary FROM emp WHERE id = 2");
  EXPECT_EQ(RowsToString(check), "(80)");
}

TEST_F(DmlTest, UpdateRespectsCheckConstraints) {
  MustExecute(&engine_,
              "CREATE TABLE bounded (k INT NOT NULL CHECK (k BETWEEN 1 AND "
              "10), tag VARCHAR(4))");
  MustExecute(&engine_, "INSERT INTO bounded VALUES (5, 'a')");
  auto bad = engine_.Execute("UPDATE bounded SET k = 50 WHERE tag = 'a'");
  EXPECT_FALSE(bad.ok());
  QueryResult check = MustExecute(&engine_, "SELECT k FROM bounded");
  EXPECT_EQ(RowsToString(check), "(5)");
}

TEST_F(DmlTest, RemoteDmlRefused) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "r");
  MustExecute(remote.engine.get(), "CREATE TABLE t (a INT)");
  auto del = host.Execute("DELETE FROM r.d.s.t WHERE a = 1");
  EXPECT_EQ(del.status().code(), StatusCode::kNotSupported);
  auto upd = host.Execute("UPDATE r.d.s.t SET a = 2");
  EXPECT_EQ(upd.status().code(), StatusCode::kNotSupported);
  // But pass-through works.
  MustExecute(remote.engine.get(), "INSERT INTO t VALUES (1)");
  auto rowset = host.ExecutePassThrough("r", "DELETE FROM t WHERE a = 1");
  EXPECT_TRUE(rowset.ok()) << rowset.status().ToString();
  EXPECT_EQ(RowsToString(MustExecute(remote.engine.get(),
                                     "SELECT COUNT(*) FROM t")),
            "(0)");
}

TEST_F(DmlTest, DropTableAndView) {
  MustExecute(&engine_, "CREATE VIEW ev AS SELECT id FROM emp");
  MustExecute(&engine_, "DROP VIEW ev");
  EXPECT_EQ(engine_.Execute("SELECT * FROM ev").status().code(),
            StatusCode::kNotFound);
  MustExecute(&engine_, "DROP TABLE emp");
  EXPECT_EQ(engine_.Execute("SELECT * FROM emp").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Execute("DROP TABLE emp").status().code(),
            StatusCode::kNotFound);
  // The name is reusable.
  MustExecute(&engine_, "CREATE TABLE emp (id INT PRIMARY KEY)");
}

TEST_F(DmlTest, ExplainStatement) {
  QueryResult r = MustExecute(&engine_, "EXPLAIN SELECT * FROM emp WHERE "
                                        "id = 3");
  ASSERT_NE(r.rowset, nullptr);
  ASSERT_GT(r.rowset->rows().size(), 0u);
  std::string all = RowsToString(r);
  EXPECT_NE(all.find("rows="), std::string::npos);
  // EXPLAIN does not execute: no runtime stats accumulate.
  EXPECT_EQ(r.exec_stats.rows_output, 0);
  EXPECT_FALSE(engine_.Execute("EXPLAIN DELETE FROM emp").ok());
}

TEST_F(DmlTest, DeleteSeenByCachedPlans) {
  QueryResult before = MustExecute(&engine_, "SELECT COUNT(*) FROM emp");
  EXPECT_EQ(RowsToString(before), "(5)");
  MustExecute(&engine_, "DELETE FROM emp WHERE id = 1");
  QueryResult after = MustExecute(&engine_, "SELECT COUNT(*) FROM emp");
  EXPECT_EQ(RowsToString(after), "(4)");
}

}  // namespace
}  // namespace dhqp
