// End-to-end smoke tests: SQL in, rows out, on a single local engine.

#include "tests/test_util.h"

namespace dhqp {
namespace {

class EngineSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_,
                "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(40), "
                "dept INT, salary FLOAT, hired DATE)");
    MustExecute(&engine_,
                "INSERT INTO emp VALUES "
                "(1, 'alice', 10, 100.0, '2001-01-15'), "
                "(2, 'bob', 10, 80.0, '2002-06-01'), "
                "(3, 'carol', 20, 120.0, '2000-03-20'), "
                "(4, 'dave', 20, 90.0, '2003-11-11'), "
                "(5, 'erin', 30, 70.0, '2004-02-02')");
    MustExecute(&engine_,
                "CREATE TABLE dept (id INT PRIMARY KEY, dname VARCHAR(30))");
    MustExecute(&engine_,
                "INSERT INTO dept VALUES (10,'eng'),(20,'sales'),(30,'hr')");
  }

  Engine engine_;
};

TEST_F(EngineSmokeTest, SelectStar) {
  QueryResult r = MustExecute(&engine_, "SELECT * FROM emp");
  ASSERT_NE(r.rowset, nullptr);
  EXPECT_EQ(r.rowset->rows().size(), 5u);
  EXPECT_EQ(r.rowset->schema().num_columns(), 5u);
}

TEST_F(EngineSmokeTest, FilterAndProject) {
  QueryResult r = MustExecute(
      &engine_, "SELECT name, salary FROM emp WHERE salary >= 90 AND dept < 30");
  EXPECT_EQ(RowsToString(r), "(alice, 100)(carol, 120)(dave, 90)");
}

TEST_F(EngineSmokeTest, OrderByDesc) {
  QueryResult r = MustExecute(
      &engine_, "SELECT name FROM emp ORDER BY salary DESC");
  EXPECT_EQ(RowsToString(r), "(carol)(alice)(dave)(bob)(erin)");
}

TEST_F(EngineSmokeTest, TopWithOrder) {
  QueryResult r = MustExecute(
      &engine_, "SELECT TOP 2 name FROM emp ORDER BY salary DESC");
  EXPECT_EQ(RowsToString(r), "(carol)(alice)");
}

TEST_F(EngineSmokeTest, Join) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id "
      "WHERE d.dname = 'eng' ORDER BY e.name");
  EXPECT_EQ(RowsToString(r), "(alice, eng)(bob, eng)");
}

TEST_F(EngineSmokeTest, CommaJoinWithWhere) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT e.name FROM emp e, dept d "
      "WHERE e.dept = d.id AND d.dname = 'hr'");
  EXPECT_EQ(RowsToString(r), "(erin)");
}

TEST_F(EngineSmokeTest, GroupByAggregates) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT dept, COUNT(*), SUM(salary), MIN(name) FROM emp "
      "GROUP BY dept ORDER BY dept");
  EXPECT_EQ(RowsToString(r),
            "(10, 2, 180, alice)(20, 2, 210, carol)(30, 1, 70, erin)");
}

TEST_F(EngineSmokeTest, ScalarAggregate) {
  QueryResult r = MustExecute(&engine_, "SELECT COUNT(*), AVG(salary) FROM emp");
  EXPECT_EQ(RowsToString(r), "(5, 92)");
}

TEST_F(EngineSmokeTest, Having) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept");
  EXPECT_EQ(RowsToString(r), "(10)(20)");
}

TEST_F(EngineSmokeTest, Distinct) {
  QueryResult r = MustExecute(
      &engine_, "SELECT DISTINCT dept FROM emp ORDER BY dept");
  EXPECT_EQ(RowsToString(r), "(10)(20)(30)");
}

TEST_F(EngineSmokeTest, InListBetweenLike) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT name FROM emp WHERE dept IN (10, 30) AND salary BETWEEN 60 AND 90"
      " AND name LIKE '%b%' ORDER BY name");
  EXPECT_EQ(RowsToString(r), "(bob)");
}

TEST_F(EngineSmokeTest, ExistsSubquery) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT d.dname FROM dept d WHERE EXISTS "
      "(SELECT * FROM emp e WHERE e.dept = d.id AND e.salary > 100) "
      "ORDER BY d.dname");
  EXPECT_EQ(RowsToString(r), "(sales)");
}

TEST_F(EngineSmokeTest, NotExistsSubquery) {
  MustExecute(&engine_, "INSERT INTO dept VALUES (40, 'empty')");
  QueryResult r = MustExecute(
      &engine_,
      "SELECT d.dname FROM dept d WHERE NOT EXISTS "
      "(SELECT * FROM emp e WHERE e.dept = d.id)");
  EXPECT_EQ(RowsToString(r), "(empty)");
}

TEST_F(EngineSmokeTest, InSubquery) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT dname FROM dept WHERE id IN "
      "(SELECT dept FROM emp WHERE salary < 80) ORDER BY dname");
  EXPECT_EQ(RowsToString(r), "(hr)");
}

TEST_F(EngineSmokeTest, DateComparisonAndFunctions) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT name, YEAR(hired) FROM emp WHERE hired >= '2002-01-01' "
      "ORDER BY hired");
  EXPECT_EQ(RowsToString(r), "(bob, 2002)(dave, 2003)(erin, 2004)");
}

TEST_F(EngineSmokeTest, Parameters) {
  QueryResult r = MustExecute(
      &engine_, "SELECT name FROM emp WHERE dept = @d AND salary > @s",
      {{"@d", Value::Int64(20)}, {"@s", Value::Int64(100)}});
  EXPECT_EQ(RowsToString(r), "(carol)");
}

TEST_F(EngineSmokeTest, CaseExpression) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT name, CASE WHEN salary >= 100 THEN 'high' ELSE 'low' END "
      "FROM emp WHERE dept = 10 ORDER BY name");
  EXPECT_EQ(RowsToString(r), "(alice, high)(bob, low)");
}

TEST_F(EngineSmokeTest, UnionAll) {
  QueryResult r = MustExecute(
      &engine_,
      "SELECT name FROM emp WHERE dept = 10 UNION ALL "
      "SELECT name FROM emp WHERE dept = 30");
  EXPECT_EQ(r.rowset->rows().size(), 3u);
}

TEST_F(EngineSmokeTest, LeftOuterJoin) {
  MustExecute(&engine_, "INSERT INTO dept VALUES (50, 'lab')");
  QueryResult r = MustExecute(
      &engine_,
      "SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON e.dept = d.id "
      "WHERE d.id >= 30 ORDER BY d.dname");
  EXPECT_EQ(RowsToString(r), "(hr, erin)(lab, NULL)");
}

TEST_F(EngineSmokeTest, RightOuterJoin) {
  MustExecute(&engine_, "INSERT INTO dept VALUES (60, 'ops')");
  // RIGHT JOIN preserves dept (the right side).
  QueryResult r = MustExecute(
      &engine_,
      "SELECT d.dname, e.name FROM emp e RIGHT JOIN dept d ON e.dept = d.id "
      "WHERE d.id >= 30 ORDER BY d.dname");
  EXPECT_EQ(RowsToString(r), "(hr, erin)(ops, NULL)");
}

TEST_F(EngineSmokeTest, ViewExpansion) {
  MustExecute(&engine_,
              "CREATE VIEW rich AS SELECT name, salary FROM emp "
              "WHERE salary >= 100");
  QueryResult r = MustExecute(&engine_, "SELECT name FROM rich ORDER BY name");
  EXPECT_EQ(RowsToString(r), "(alice)(carol)");
}

TEST_F(EngineSmokeTest, ArithmeticInSelect) {
  QueryResult r = MustExecute(
      &engine_, "SELECT name, salary * 2 + 1 AS double_pay FROM emp "
                "WHERE id = 1");
  EXPECT_EQ(RowsToString(r), "(alice, 201)");
}

TEST_F(EngineSmokeTest, ExplainProducesPlan) {
  auto text = engine_.Explain("SELECT * FROM emp WHERE id = 3");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("est cost"), std::string::npos);
}

TEST_F(EngineSmokeTest, IndexSeekOnPrimaryKey) {
  // A table large enough that a seek beats a scan (at 5 rows a scan wins,
  // correctly).
  MustExecute(&engine_, "CREATE TABLE big (id INT PRIMARY KEY, v INT)");
  for (int batch = 0; batch < 10; ++batch) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = 0; i < 50; ++i) {
      int id = batch * 50 + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(id) + "," + std::to_string(id * 7) + ")";
    }
    MustExecute(&engine_, sql);
  }
  QueryResult r = MustExecute(&engine_, "SELECT v FROM big WHERE id = 123");
  EXPECT_EQ(RowsToString(r), "(861)");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kIndexRange), 1);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kTableScan), 0);
}

TEST_F(EngineSmokeTest, ErrorsAreStatuses) {
  EXPECT_FALSE(engine_.Execute("SELECT * FROM nope").ok());
  EXPECT_FALSE(engine_.Execute("SELECT bad syntax FROM FROM").ok());
  EXPECT_FALSE(engine_.Execute("SELECT nocol FROM emp").ok());
}

}  // namespace
}  // namespace dhqp
