// Optimizer feature tests: the remote spool enforcer (§4.1.4), the
// parameterization rule (§4.1.2), remote access-path selection (§3.3),
// statistics-driven estimation (§3.2.4), multi-phase search (§4.1.1) and
// delayed schema validation (§4.1.5).

#include "src/workloads/tpch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

class OptimizerFeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE fact (k INT PRIMARY KEY, grp INT, v INT)");
    std::string sql = "INSERT INTO fact VALUES ";
    for (int i = 1; i <= 1000; ++i) {
      if (i > 1) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 20) + "," +
             std::to_string(i * 3) + ")";
    }
    MustExecute(remote_.engine.get(), sql);
    MustExecute(remote_.engine.get(),
                "CREATE INDEX idx_fact_grp ON fact (grp)");

    MustExecute(&host_, "CREATE TABLE probe (k INT PRIMARY KEY, tag "
                        "VARCHAR(8))");
    MustExecute(&host_,
                "INSERT INTO probe VALUES (5,'a'),(105,'b'),(205,'c')");
  }

  Engine host_;
  RemoteServer remote_;
};

TEST_F(OptimizerFeatureTest, ParameterizedRemoteJoin) {
  // Small outer, large remote inner with a selective equi key: the
  // parameterization rule drives one remote query per outer row instead of
  // shipping the whole table.
  QueryResult r = MustExecute(
      &host_,
      "SELECT p.tag, f.v FROM probe p JOIN rsrv.d.s.fact f ON p.k = f.k "
      "ORDER BY p.tag");
  EXPECT_EQ(RowsToString(r), "(a, 15)(b, 315)(c, 615)");
  ASSERT_EQ(CountOps(r.plan, PhysicalOpKind::kNestedLoopsJoin), 1)
      << r.plan->ToString();
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  // One remote command per outer row; 3 rows shipped in total.
  EXPECT_EQ(r.exec_stats.remote_commands, 3);
  EXPECT_EQ(r.exec_stats.rows_from_remote, 3);
}

TEST_F(OptimizerFeatureTest, ParameterizationDisabledAblation) {
  host_.options()->optimizer.enable_parameterization = false;
  QueryResult r = MustExecute(
      &host_,
      "SELECT p.tag, f.v FROM probe p JOIN rsrv.d.s.fact f ON p.k = f.k "
      "ORDER BY p.tag");
  EXPECT_EQ(RowsToString(r), "(a, 15)(b, 315)(c, 615)");
  // Without the rule the whole remote table crosses the link (hash join).
  EXPECT_GE(r.exec_stats.rows_from_remote, 1000);
}

TEST_F(OptimizerFeatureTest, SpoolOverRemoteInner) {
  // A non-equi join forces nested loops; the spool enforcer materializes
  // the remote inner so it ships once, not once per outer row.
  QueryResult r = MustExecute(
      &host_,
      "SELECT COUNT(*) FROM probe p JOIN rsrv.d.s.fact f "
      "ON f.k < p.k AND f.grp > p.k");
  ASSERT_NE(r.rowset, nullptr);
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kSpool), 1) << r.plan->ToString();
  EXPECT_GT(r.exec_stats.spool_rescans, 0);
  // The remote side executed exactly once.
  EXPECT_LE(r.exec_stats.remote_commands + r.exec_stats.remote_opens, 1);
}

TEST_F(OptimizerFeatureTest, SpoolDisabledRefetchesRemote) {
  host_.options()->optimizer.enable_spool_enforcer = false;
  QueryResult r = MustExecute(
      &host_,
      "SELECT COUNT(*) FROM probe p JOIN rsrv.d.s.fact f "
      "ON f.k < p.k AND f.grp > p.k");
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kSpool), 0);
  // The remote subtree re-executes per outer row (3 probes).
  EXPECT_GE(r.exec_stats.remote_commands + r.exec_stats.remote_opens, 3);
}

TEST_F(OptimizerFeatureTest, RemoteAccessPathsBySelectivity) {
  // Point lookup on an indexed remote column: an index-based remote path
  // (range / fetch / parameterized query), never a full remote scan.
  QueryResult point = MustExecute(
      &host_, "SELECT v FROM rsrv.d.s.fact WHERE k = 500");
  EXPECT_EQ(RowsToString(point), "(1500)");
  EXPECT_EQ(CountOps(point.plan, PhysicalOpKind::kRemoteScan), 0);
  EXPECT_LE(point.exec_stats.rows_from_remote, 1);

  // Low-selectivity predicate: shipping qualifying rows via a pushed query
  // or index range; whole-table scans lose.
  QueryResult range = MustExecute(
      &host_, "SELECT COUNT(*) FROM rsrv.d.s.fact WHERE k > 900");
  EXPECT_EQ(RowsToString(range), "(100)");
  EXPECT_LE(range.exec_stats.rows_from_remote, 100);
}

TEST_F(OptimizerFeatureTest, RemoteStatisticsImproveEstimates) {
  // The remote column grp has 20 distinct values; with histogram rowsets
  // (§3.2.4) the estimate for grp = 7 is ~50 rows. Without, the default
  // equality guess applies.
  QueryResult with_stats = MustExecute(
      &host_, "SELECT v FROM rsrv.d.s.fact WHERE grp = 7");
  EXPECT_EQ(with_stats.rowset->rows().size(), 50u);
  double est = with_stats.plan->estimated_rows;
  EXPECT_NEAR(est, 50.0, 15.0);

  Engine host2;
  RemoteServer r2 = AttachRemoteEngine(&host2, "rsrv");
  // Reuse the same remote engine? Simpler: disable remote statistics on a
  // fresh host pointing at a fresh engine with identical data.
  MustExecute(r2.engine.get(),
              "CREATE TABLE fact (k INT PRIMARY KEY, grp INT, v INT)");
  std::string sql = "INSERT INTO fact VALUES ";
  for (int i = 1; i <= 1000; ++i) {
    if (i > 1) sql += ",";
    sql += "(" + std::to_string(i) + "," + std::to_string(i % 20) + "," +
           std::to_string(i * 3) + ")";
  }
  MustExecute(r2.engine.get(), sql);
  host2.options()->optimizer.enable_remote_statistics = false;
  QueryResult without = MustExecute(
      &host2, "SELECT v FROM rsrv.d.s.fact WHERE grp = 7");
  EXPECT_EQ(without.rowset->rows().size(), 50u);  // Same answer...
  double est2 = without.plan->estimated_rows;
  // ...but the estimate is the blind default (1% of 1000 = 10), off 5x.
  EXPECT_LT(est2, 20.0);
}

TEST_F(OptimizerFeatureTest, MultiPhaseStopsEarlyOnCheapQueries) {
  QueryResult cheap = MustExecute(&host_, "SELECT k FROM probe WHERE k = 5");
  EXPECT_EQ(cheap.opt_stats.phases_run, 1);
  EXPECT_EQ(cheap.opt_stats.phase_name, "transaction-processing");

  // A multi-join query must escalate past the TP phase.
  workloads::TpchOptions topt;
  topt.scale_factor = 0.005;
  topt.include_orders = true;
  Engine tpch;
  ASSERT_OK(workloads::PopulateTpch(&tpch, topt));
  QueryResult complex = MustExecute(
      &tpch,
      "SELECT n.n_name, COUNT(*) FROM customer c, orders o, nation n "
      "WHERE c.c_custkey = o.o_custkey AND c.c_nationkey = n.n_nationkey "
      "GROUP BY n.n_name");
  EXPECT_GT(complex.opt_stats.phases_run, 1);
}

TEST_F(OptimizerFeatureTest, SinglePhaseAblation) {
  host_.options()->optimizer.multi_phase = false;
  QueryResult r = MustExecute(&host_, "SELECT k FROM probe WHERE k = 5");
  EXPECT_EQ(r.opt_stats.phases_run, 1);
  EXPECT_EQ(r.opt_stats.phase_name, "full-optimization");
}

TEST_F(OptimizerFeatureTest, DelayedSchemaValidationRecompiles) {
  // Prime the metadata cache.
  MustExecute(&host_, "SELECT COUNT(*) FROM rsrv.d.s.fact");
  // The remote table changes shape behind the host's back.
  ASSERT_OK(remote_.engine->storage()->DropTable("fact"));
  MustExecute(remote_.engine.get(),
              "CREATE TABLE fact (k INT PRIMARY KEY, grp INT, v INT, "
              "extra VARCHAR(4))");
  MustExecute(remote_.engine.get(),
              "INSERT INTO fact VALUES (1, 1, 10, 'x')");
  // Delayed schema validation detects the drift at execution time and
  // recompiles against fresh metadata instead of failing.
  QueryResult r = MustExecute(&host_, "SELECT COUNT(*) FROM rsrv.d.s.fact");
  EXPECT_EQ(RowsToString(r), "(1)");
}

TEST_F(OptimizerFeatureTest, MergeJoinUsableUnderOrderRequirement) {
  // Force hash join off? There is no toggle; instead check that merge join
  // at least produces correct results when chosen by cost on sorted inputs.
  MustExecute(&host_, "CREATE TABLE a (x INT PRIMARY KEY, s VARCHAR(4))");
  MustExecute(&host_, "CREATE TABLE b (y INT PRIMARY KEY, t VARCHAR(4))");
  MustExecute(&host_, "INSERT INTO a VALUES (1,'a1'),(2,'a2'),(3,'a3')");
  MustExecute(&host_, "INSERT INTO b VALUES (2,'b2'),(3,'b3'),(4,'b4')");
  QueryResult r = MustExecute(
      &host_,
      "SELECT a.s, b.t FROM a JOIN b ON a.x = b.y ORDER BY a.x");
  EXPECT_EQ(RowsToString(r), "(a2, b2)(a3, b3)");
}

TEST_F(OptimizerFeatureTest, CommutedJoinColumnOrder) {
  // Regression: a plan built from a commuted memo alternative emits its own
  // children's column order; annotations must match or projections read the
  // wrong positions. The n-way join below exercises commuted/reassociated
  // shapes under the full phase.
  workloads::TpchOptions topt;
  topt.scale_factor = 0.01;
  topt.include_orders = false;
  Engine tpch;
  ASSERT_OK(workloads::PopulateTpch(&tpch, topt));
  QueryResult r = MustExecute(
      &tpch,
      "SELECT COUNT(*) FROM customer c, supplier s, nation n "
      "WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey");
  // Cross-check by computing the expected count from per-nation tallies.
  int64_t expected = 0;
  QueryResult by_nation = MustExecute(
      &tpch,
      "SELECT c.c_nationkey, COUNT(*) FROM customer c GROUP BY c.c_nationkey");
  QueryResult sup_by_nation = MustExecute(
      &tpch,
      "SELECT s.s_nationkey, COUNT(*) FROM supplier s GROUP BY s.s_nationkey");
  std::map<int64_t, int64_t> suppliers;
  for (const Row& row : sup_by_nation.rowset->rows()) {
    suppliers[row[0].int64_value()] = row[1].int64_value();
  }
  for (const Row& row : by_nation.rowset->rows()) {
    expected += row[1].int64_value() * suppliers[row[0].int64_value()];
  }
  EXPECT_EQ(r.rowset->rows()[0][0].int64_value(), expected);
}

}  // namespace
}  // namespace dhqp
