// Query store + system views (DMVs): the engine's own observability read
// back through the provider model. Covers statement fingerprinting, the
// execution ring and per-fingerprint aggregates, the six sys.dm_* views
// (locally and through a linked engine), DMV self-exclusion, the slow-query
// log, DML metrics, and concurrent DMV scans during execution.

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/connectors/dmv_provider.h"
#include "src/executor/profile.h"
#include "src/sysview/query_store.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

using sysview::ExecutionRecord;
using sysview::FingerprintStatement;
using sysview::FingerprintStats;
using sysview::NormalizeStatement;

int64_t CounterValue(const char* name) {
  return metrics::Registry::Global().GetCounter(name)->Value();
}

// Column accessors for DMV scan results, looked up by output name so the
// tests don't hard-code ordinals.
int64_t GetI(const QueryResult& r, size_t row, const char* col) {
  int ord = r.rowset->schema().FindColumn(col);
  EXPECT_GE(ord, 0) << "column " << col;
  return r.rowset->rows()[row][static_cast<size_t>(ord)].int64_value();
}

std::string GetS(const QueryResult& r, size_t row, const char* col) {
  int ord = r.rowset->schema().FindColumn(col);
  EXPECT_GE(ord, 0) << "column " << col;
  return r.rowset->rows()[row][static_cast<size_t>(ord)].string_value();
}

// ---------------------------------------------------------------------------
// Fingerprinting.

TEST(QueryFingerprintTest, NormalizeFoldsLiteralsCaseAndWhitespace) {
  EXPECT_EQ(NormalizeStatement("SELECT a FROM t WHERE a = 10"),
            "select a from t where a = ?");
  EXPECT_EQ(NormalizeStatement("select   a\nFROM t   WHERE a =  99"),
            "select a from t where a = ?");
  // String literals (with doubled-quote escapes) collapse to one marker.
  EXPECT_EQ(NormalizeStatement("SELECT a FROM t WHERE b = 'x''y'"),
            "select a from t where b = ?");
  // Digits inside identifiers are not literals.
  EXPECT_EQ(NormalizeStatement("SELECT c1 FROM t2"), "select c1 from t2");

  EXPECT_EQ(FingerprintStatement("SELECT a FROM t WHERE a = 1"),
            FingerprintStatement("select  a  from t where a = 2"));
  EXPECT_NE(FingerprintStatement("SELECT a FROM t"),
            FingerprintStatement("SELECT b FROM t"));
}

// ---------------------------------------------------------------------------
// Query store: ring wraparound + per-fingerprint aggregation.

TEST(QueryStoreTest, RingWrapsAndAggregatesAcrossLiteralVariants) {
  EngineOptions options;
  options.query_store_capacity = 4;
  Engine engine(options);
  MustExecute(&engine, "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  MustExecute(&engine, "INSERT INTO t VALUES (1,10),(2,20),(3,30)");

  // Ten executions that differ only in the literal: one fingerprint.
  int64_t expected_rows = 0;
  for (int i = 0; i < 10; ++i) {
    QueryResult r = MustExecute(
        &engine, "SELECT a, b FROM t WHERE a >= " + std::to_string(i % 3));
    expected_rows += static_cast<int64_t>(r.rowset->rows().size());
  }

  sysview::QueryStore* store = engine.query_store();
  // CREATE + INSERT + 10 SELECTs recorded; the ring keeps the last 4.
  EXPECT_EQ(store->total_recorded(), 12);
  std::vector<ExecutionRecord> ring = store->Snapshot();
  ASSERT_EQ(ring.size(), 4u);
  for (const ExecutionRecord& rec : ring) {
    EXPECT_EQ(rec.statement_type, "select");
  }
  // Execution ids are assigned in order and survive eviction.
  EXPECT_EQ(ring.back().execution_id, 12);

  // Aggregates are keyed by fingerprint, not by raw text, and outlive the
  // ring: create, insert, and the folded select family.
  std::vector<FingerprintStats> aggs = store->AggregateSnapshot();
  ASSERT_EQ(aggs.size(), 3u);
  const FingerprintStats& sel = aggs[2];
  EXPECT_EQ(sel.statement_type, "select");
  EXPECT_EQ(sel.executions, 10);
  EXPECT_EQ(sel.failures, 0);
  EXPECT_EQ(sel.rows, expected_rows);
  // Plan-cache keys are raw text: 3 distinct literals compile once each,
  // the other 7 executions hit — yet all fold into one fingerprint.
  EXPECT_EQ(sel.cache_hits, 7);
  EXPECT_EQ(sel.cache_misses, 3);
  EXPECT_GE(sel.max_duration_ns, sel.min_duration_ns);
  EXPECT_GE(sel.total_duration_ns, sel.max_duration_ns);
  EXPECT_EQ(sel.last_execution_id, 12);
}

// ---------------------------------------------------------------------------
// sys..dm_link_stats: local scan matches the live link counters.

class SysViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
    MustExecute(remote_.engine.get(),
                "INSERT INTO t VALUES (1,10),(2,20),(3,30),(4,40)");
  }

  Engine host_;
  RemoteServer remote_;
};

TEST_F(SysViewTest, LocalLinkStatsMatchLinkCounters) {
  MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.t WHERE a >= 2");
  net::LinkStats expected = remote_.link->stats();
  EXPECT_GT(expected.messages, 0);

  // The DMV scan itself must not touch the rsrv link (sys is in-process).
  QueryResult r = MustExecute(
      &host_,
      "SELECT server, link, messages, wire_rows, bytes, retries, timeouts, "
      "faults FROM sys..dm_link_stats");
  ASSERT_EQ(r.rowset->rows().size(), 1u);  // sys itself is not a link.
  EXPECT_EQ(GetS(r, 0, "server"), "rsrv");
  EXPECT_EQ(GetS(r, 0, "link"), "rsrv");
  EXPECT_EQ(GetI(r, 0, "messages"), expected.messages);
  EXPECT_EQ(GetI(r, 0, "wire_rows"), expected.rows);
  EXPECT_EQ(GetI(r, 0, "bytes"), expected.bytes);
  EXPECT_EQ(GetI(r, 0, "retries"), expected.retries);
  EXPECT_EQ(GetI(r, 0, "timeouts"), expected.timeouts);
  EXPECT_EQ(GetI(r, 0, "faults"), expected.faults);
  EXPECT_EQ(remote_.link->stats().messages, expected.messages);
}

// Federation-wide introspection: a host reads another engine's DMVs through
// the ordinary linked-server machinery (`mid.sys..dm_link_stats`), so the
// whole topology is diagnosable from one seat.
TEST(SysViewRemoteTest, RemoteDmvScanThroughLinkedEngine) {
  Engine host;
  RemoteServer mid = AttachRemoteEngine(&host, "mid");
  RemoteServer leaf = AttachRemoteEngine(mid.engine.get(), "leaf");
  MustExecute(leaf.engine.get(), "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  MustExecute(leaf.engine.get(), "INSERT INTO t VALUES (1,10),(2,20)");

  // Traffic on mid's link to leaf, invisible to the host's own links.
  MustExecute(mid.engine.get(), "SELECT a, b FROM leaf.d.s.t");
  net::LinkStats expected = leaf.link->stats();
  EXPECT_GT(expected.messages, 0);

  QueryResult r = MustExecute(
      &host,
      "SELECT server, messages, wire_rows, bytes FROM mid.sys..dm_link_stats");
  ASSERT_EQ(r.rowset->rows().size(), 1u);
  EXPECT_EQ(GetS(r, 0, "server"), "leaf");
  EXPECT_EQ(GetI(r, 0, "messages"), expected.messages);
  EXPECT_EQ(GetI(r, 0, "wire_rows"), expected.rows);
  EXPECT_EQ(GetI(r, 0, "bytes"), expected.bytes);

  // The mid engine's query store does not record the scans it answered for
  // the host: they resolve to sys and are excluded on the serving side too.
  for (const ExecutionRecord& rec : mid.engine->query_store()->Snapshot()) {
    EXPECT_EQ(rec.statement.find("dm_link_stats"), std::string::npos)
        << rec.statement;
  }
}

// ---------------------------------------------------------------------------
// dm_exec_query_stats vs per-result ExecStats under a seeded fault schedule.

TEST_F(SysViewTest, QueryStatsAggregateMatchesExecStatsUnderChaos) {
  remote_.injector->Reset(ChaosSeed(/*suite_tag=*/41, /*index=*/7));
  remote_.injector->SetDropProbability(0.15);

  const std::string sql = "SELECT a, b FROM rsrv.d.s.t WHERE a >= @lo";
  const int kRuns = 20;
  int64_t ok_runs = 0, failed_runs = 0;
  int64_t sum_rows = 0, sum_retries = 0, sum_timeouts = 0, sum_faults = 0;
  int64_t cache_hits = 0;
  for (int i = 0; i < kRuns; ++i) {
    auto result = host_.Execute(sql, {{"@lo", Value::Int64(i % 4)}});
    if (!result.ok()) {
      ++failed_runs;
      continue;
    }
    ++ok_runs;
    const QueryResult& qr = result.value();
    sum_rows += static_cast<int64_t>(qr.rowset->rows().size());
    sum_retries += qr.exec_stats.remote_retries;
    sum_timeouts += qr.exec_stats.remote_timeouts;
    sum_faults += qr.exec_stats.faults_injected;
    if (qr.plan_cache_hit) ++cache_hits;
  }
  ASSERT_GT(ok_runs, 0);
  remote_.injector->Reset();  // Quiesce before reading the views.

  // The parameterized text is one fingerprint; the store's aggregate must
  // agree with what the per-execution results reported.
  QueryResult r = MustExecute(
      &host_,
      "SELECT sample_statement, executions, failures, cache_hits, "
      "cache_misses, rows, retries, timeouts, faults "
      "FROM sys..dm_exec_query_stats WHERE statement_type = 'select'");
  ASSERT_EQ(r.rowset->rows().size(), 1u);
  EXPECT_EQ(GetS(r, 0, "sample_statement"), sql);
  EXPECT_EQ(GetI(r, 0, "executions"), kRuns);
  EXPECT_EQ(GetI(r, 0, "failures"), failed_runs);
  EXPECT_EQ(GetI(r, 0, "rows"), sum_rows);
  EXPECT_EQ(GetI(r, 0, "retries"), sum_retries);
  EXPECT_EQ(GetI(r, 0, "timeouts"), sum_timeouts);
  EXPECT_EQ(GetI(r, 0, "faults"), sum_faults);
  // Every run was cacheable: hits + misses account for all executions.
  EXPECT_EQ(GetI(r, 0, "cache_hits"), cache_hits);
  EXPECT_EQ(GetI(r, 0, "cache_hits") + GetI(r, 0, "cache_misses"), kRuns);
}

// ---------------------------------------------------------------------------
// Self-exclusion: observing the store must not grow it.

TEST_F(SysViewTest, DmvQueriesAreExcludedFromStoreCacheAndCounters) {
  MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.t");
  sysview::QueryStore* store = host_.query_store();
  const int64_t recorded_before = store->total_recorded();
  const size_t cache_before = host_.PlanCacheSnapshot().size();
  const int64_t statements_before = CounterValue("exec.statements");
  const int64_t hits_before = CounterValue("engine.plan_cache.hit");
  const int64_t misses_before = CounterValue("engine.plan_cache.miss");

  // Every shape of DMV read: bare scan, filtered scan, projection, repeat.
  MustExecute(&host_, "SELECT server, messages FROM sys..dm_link_stats");
  QueryResult m = MustExecute(
      &host_,
      "SELECT name, value FROM sys..dm_metrics WHERE name = 'exec.statements'");
  ASSERT_EQ(m.rowset->rows().size(), 1u);
  EXPECT_GT(GetI(m, 0, "value"), 0);
  MustExecute(&host_, "SELECT fingerprint FROM sys..dm_exec_query_stats");
  MustExecute(&host_, "SELECT statement FROM sys..dm_plan_cache");
  // Compile-only EXPLAIN is excluded too (nothing executed).
  MustExecute(&host_, "EXPLAIN SELECT a FROM rsrv.d.s.t");

  EXPECT_EQ(store->total_recorded(), recorded_before);
  EXPECT_EQ(host_.PlanCacheSnapshot().size(), cache_before);
  EXPECT_EQ(CounterValue("exec.statements"), statements_before);
  EXPECT_EQ(CounterValue("engine.plan_cache.hit"), hits_before);
  EXPECT_EQ(CounterValue("engine.plan_cache.miss"), misses_before);

  // The store still records ordinary statements afterwards.
  MustExecute(&host_, "SELECT b FROM rsrv.d.s.t WHERE a = 1");
  EXPECT_EQ(store->total_recorded(), recorded_before + 1);
}

// ---------------------------------------------------------------------------
// dm_exec_operator_stats mirrors the recorded operator profiles.

TEST_F(SysViewTest, OperatorStatsMatchFlattenedProfile) {
  QueryResult user = MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.t");
  ASSERT_NE(user.profile, nullptr);
  std::vector<FlatOperator> flat = FlattenOperatorProfile(*user.profile);
  ASSERT_FALSE(flat.empty());

  QueryResult r = MustExecute(
      &host_,
      "SELECT query_id, op_id, parent_op_id, operator, act_rows, opens "
      "FROM sys..dm_exec_operator_stats");
  // SetUp ran no host-side statements, so the store holds exactly the one
  // profiled select (the DMV scan itself is excluded).
  ASSERT_EQ(r.rowset->rows().size(), flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    const OperatorProfile& op = *flat[i].op;
    EXPECT_EQ(GetI(r, i, "op_id"), op.id);
    EXPECT_EQ(GetI(r, i, "parent_op_id"), flat[i].parent_id);
    EXPECT_EQ(GetS(r, i, "operator"), op.name);
    EXPECT_EQ(GetI(r, i, "act_rows"), op.rows_out.load());
    EXPECT_EQ(GetI(r, i, "opens"), op.opens.load());
    EXPECT_EQ(GetI(r, i, "query_id"), GetI(r, 0, "query_id"));
  }
  // Pre-order ids are 1..N with the root first, matching EXPLAIN lines.
  EXPECT_EQ(GetI(r, 0, "op_id"), 1);
  EXPECT_EQ(GetI(r, 0, "parent_op_id"), 0);
}

// ---------------------------------------------------------------------------
// dm_plan_cache: hits accumulate; DDL invalidates.

TEST_F(SysViewTest, PlanCacheViewShowsHitsAndSchemaInvalidation) {
  const std::string sql = "SELECT a FROM rsrv.d.s.t WHERE a >= @lo";
  MustExecute(&host_, sql, {{"@lo", Value::Int64(1)}});
  QueryResult second = MustExecute(&host_, sql, {{"@lo", Value::Int64(3)}});
  EXPECT_TRUE(second.plan_cache_hit);

  QueryResult r = MustExecute(
      &host_,
      "SELECT statement, hits, valid FROM sys..dm_plan_cache");
  ASSERT_EQ(r.rowset->rows().size(), 1u);
  EXPECT_EQ(GetS(r, 0, "statement"), sql);
  EXPECT_EQ(GetI(r, 0, "hits"), 1);
  EXPECT_EQ(GetI(r, 0, "valid"), 1);

  // DDL bumps the schema version: the entry survives but reads as stale.
  MustExecute(&host_, "CREATE TABLE scratch (x INT PRIMARY KEY)");
  r = MustExecute(&host_,
                  "SELECT statement, valid FROM sys..dm_plan_cache");
  ASSERT_EQ(r.rowset->rows().size(), 1u);
  EXPECT_EQ(GetI(r, 0, "valid"), 0);
}

// ---------------------------------------------------------------------------
// dm_trace_spans surfaces the global tracer.

TEST_F(SysViewTest, TraceSpansViewExposesRecordedSpans) {
  trace::Tracer::Global().Enable();
  MustExecute(&host_, "SELECT a FROM rsrv.d.s.t");
  QueryResult r = MustExecute(
      &host_, "SELECT name, dur_ns FROM sys..dm_trace_spans");
  trace::Tracer::Global().Disable();

  ASSERT_GT(r.rowset->rows().size(), 0u);
  bool saw_parse = false;
  for (size_t i = 0; i < r.rowset->rows().size(); ++i) {
    if (GetS(r, i, "name") == "engine.parse") saw_parse = true;
    EXPECT_GE(GetI(r, i, "dur_ns"), 0);
  }
  EXPECT_TRUE(saw_parse);
}

// ---------------------------------------------------------------------------
// Slow-query log.

TEST(SlowQueryTest, ThresholdAppendsWarningWithProfileAndCounts) {
  EngineOptions options;
  options.slow_query_ns = 1;  // Everything is slow.
  Engine engine(options);
  MustExecute(&engine, "CREATE TABLE t (a INT PRIMARY KEY)");
  MustExecute(&engine, "INSERT INTO t VALUES (1),(2),(3)");

  const int64_t slow_before = CounterValue("exec.slow_queries");
  const int64_t warn_before = CounterValue("exec.warnings");
  QueryResult r = MustExecute(&engine, "SELECT a FROM t WHERE a >= 2");
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("slow query:"), std::string::npos);
  // collect_operator_stats defaults on, so the est-vs-actual profile rides
  // along — the first thing a slow-query investigation wants.
  EXPECT_NE(r.warnings[0].find("#1 "), std::string::npos);
  EXPECT_EQ(CounterValue("exec.slow_queries"), slow_before + 1);
  EXPECT_EQ(CounterValue("exec.warnings"), warn_before + 1);

  // The warning is also visible in the query store record.
  std::vector<ExecutionRecord> ring = engine.query_store()->Snapshot();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().warnings, 1);
}

// ---------------------------------------------------------------------------
// DML metrics (PR 3 only instrumented SELECT).

TEST(DmlMetricsTest, DmlStatementsAndRowsAffectedAreCounted) {
  Engine engine;
  MustExecute(&engine, "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  const int64_t dml_before = CounterValue("exec.dml_statements");
  const int64_t rows_before = CounterValue("exec.dml_rows_affected");

  MustExecute(&engine, "INSERT INTO t VALUES (1,1),(2,2),(3,3)");
  MustExecute(&engine, "UPDATE t SET b = 9 WHERE a >= 2");
  MustExecute(&engine, "DELETE FROM t WHERE a = 1");

  EXPECT_EQ(CounterValue("exec.dml_statements"), dml_before + 3);
  // 3 inserted + 2 updated + 1 deleted.
  EXPECT_EQ(CounterValue("exec.dml_rows_affected"), rows_before + 6);

  // Statement types land in the store for per-shape aggregation.
  std::set<std::string> types;
  for (const FingerprintStats& f : engine.query_store()->AggregateSnapshot()) {
    types.insert(f.statement_type);
  }
  EXPECT_TRUE(types.count("insert"));
  EXPECT_TRUE(types.count("update"));
  EXPECT_TRUE(types.count("delete"));
}

// ---------------------------------------------------------------------------
// The sys name is reserved.

TEST(SysViewReservedTest, UserCannotRebindSysServer) {
  Engine engine;
  auto source = std::make_shared<DmvDataSource>(&engine);
  Status st = engine.AddLinkedServer("sys", source);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  st = engine.AddLinkedServer("SYS", source);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  // The engine's own registration is reachable.
  ASSERT_OK(engine.catalog()->GetLinkedServer("sys").status());
}

// ---------------------------------------------------------------------------
// Explain with parameters binds like Execute would.

TEST_F(SysViewTest, ExplainAcceptsParameters) {
  auto plan = host_.Explain("SELECT a FROM rsrv.d.s.t WHERE a >= @lo",
                            {{"@lo", Value::Int64(2)}});
  ASSERT_OK(plan.status());
  EXPECT_FALSE(plan.value().empty());
  // Unparameterized overload still works.
  ASSERT_OK(host_.Explain("SELECT a, b FROM rsrv.d.s.t").status());
}

// ---------------------------------------------------------------------------
// Concurrent DMV scans while the engine executes (TSan coverage): a monitor
// thread reads every view through the catalog's system session while the
// owning thread runs remote queries and DDL.

TEST_F(SysViewTest, ConcurrentDmvScansDuringExecution) {
  // Prime cached sessions from the owning thread so the scan loop only
  // reads shared state the engine mutates under its own locks/atomics.
  MustExecute(&host_, "SELECT a FROM rsrv.d.s.t");
  ASSERT_OK(host_.catalog()->SystemSession().status());

  const char* kViews[] = {"dm_exec_query_stats", "dm_exec_operator_stats",
                          "dm_exec_requests",
                          "dm_exec_distributed_requests",
                          "dm_link_stats",       "dm_plan_cache",
                          "dm_metrics",          "dm_os_wait_stats",
                          "dm_trace_spans"};
  std::atomic<bool> stop{false};
  std::vector<std::string> scan_errors;
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto session = host_.catalog()->SystemSession();
      if (!session.ok()) {
        scan_errors.push_back(session.status().ToString());
        return;
      }
      for (const char* view : kViews) {
        auto rowset = (*session)->OpenRowset(view);
        if (!rowset.ok()) {
          scan_errors.push_back(rowset.status().ToString());
          return;
        }
        auto rows = DrainRowset(rowset->get());
        if (!rows.ok()) {
          scan_errors.push_back(rows.status().ToString());
          return;
        }
      }
    }
  });

  for (int i = 0; i < 30; ++i) {
    MustExecute(&host_, "SELECT a, b FROM rsrv.d.s.t WHERE a >= @lo",
                {{"@lo", Value::Int64(i % 4)}});
    if (i % 10 == 4) {
      // DDL bumps the schema version and invalidates cached plans while the
      // monitor snapshots dm_plan_cache.
      MustExecute(&host_,
                  "CREATE TABLE c" + std::to_string(i) +
                      " (x INT PRIMARY KEY)");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  monitor.join();
  EXPECT_TRUE(scan_errors.empty())
      << "first scan error: " << scan_errors.front();
}

}  // namespace
}  // namespace dhqp
