// Observability suite: per-operator OperatorProfile trees (row counts
// consistent with the delivered result, including parallel Concat branches
// and prefetch producer threads), EXPLAIN ANALYZE estimated-vs-actual
// rendering, trace span well-formedness under fault/retry storms, and
// metrics registry semantics (snapshot determinism, reset, concurrency —
// the latter is the TSan target for the tracer/registry hot paths).

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

/// Collects every profile node (pre-order) into `out`.
void FlattenProfile(const OperatorProfile& p,
                    std::vector<const OperatorProfile*>* out) {
  out->push_back(&p);
  for (const auto& child : p.children) FlattenProfile(*child, out);
}

std::string ResultText(const QueryResult& result) {
  std::string text;
  if (result.rowset == nullptr) return text;
  for (const Row& row : result.rowset->rows()) {
    text += RowToString(row);
    text += "\n";
  }
  return text;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE items (id INT PRIMARY KEY, category INT, "
                "price INT)");
    std::string sql = "INSERT INTO items VALUES ";
    for (int i = 0; i < 2000; ++i) {
      if (i) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 5) + "," +
             std::to_string(i % 300) + ")";
    }
    MustExecute(remote_.engine.get(), sql);
    MustExecute(&host_,
                "CREATE TABLE categories (cid INT PRIMARY KEY, "
                "cname VARCHAR(20))");
    MustExecute(&host_,
                "INSERT INTO categories VALUES (0,'a'),(1,'b'),(2,'c'),"
                "(3,'d'),(4,'e')");
  }

  Engine host_;
  RemoteServer remote_;
};

// ---------------------------------------------------------------------------
// Operator profiles: row counts vs. the delivered result.
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, RootRowCountMatchesResultRows) {
  QueryResult r = MustExecute(
      &host_,
      "SELECT i.id, c.cname FROM rsrv.d.s.items i "
      "JOIN categories c ON i.category = c.cid WHERE i.price < 50");
  ASSERT_NE(r.rowset, nullptr);
  ASSERT_NE(r.profile, nullptr);
  EXPECT_EQ(r.profile->rows_out.load(),
            static_cast<int64_t>(r.rowset->rows().size()));
  EXPECT_GT(r.rowset->rows().size(), 0u);

  // Pre-order ids are dense 1..N, matching EXPLAIN's numbering.
  std::vector<const OperatorProfile*> nodes;
  FlattenProfile(*r.profile, &nodes);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->id, static_cast<int>(i) + 1);
    EXPECT_FALSE(nodes[i]->name.empty());
    EXPECT_EQ(nodes[i]->opens.load(), 1);
  }

  // The remote leg is attributed to the right link and actually talked.
  bool saw_remote = false;
  for (const OperatorProfile* p : nodes) {
    if (p->link.empty()) continue;
    saw_remote = true;
    EXPECT_EQ(p->link, "rsrv");
    EXPECT_GT(p->link_charges.messages.load(), 0);
    EXPECT_GT(p->link_charges.bytes.load(), 0);
  }
  EXPECT_TRUE(saw_remote);
}

TEST_F(ObservabilityTest, ParallelConcatWithPrefetchAttributesPerMember) {
  RemoteServer other = AttachRemoteEngine(&host_, "srvb");
  MustExecute(remote_.engine.get(),
              "CREATE TABLE part_a (id INT PRIMARY KEY, v INT)");
  MustExecute(other.engine.get(),
              "CREATE TABLE part_b (id INT PRIMARY KEY, v INT)");
  for (const char* stmt : {"a", "b"}) {
    Engine* eng = stmt[0] == 'a' ? remote_.engine.get() : other.engine.get();
    int lo = stmt[0] == 'a' ? 0 : 400;
    std::string sql =
        std::string("INSERT INTO part_") + stmt + " VALUES ";
    for (int i = lo; i < lo + 400; ++i) {
      if (i != lo) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i * 3) + ")";
    }
    MustExecute(eng, sql);
  }
  MustExecute(&host_,
              "CREATE VIEW both_parts AS "
              "SELECT * FROM rsrv.d.s.part_a UNION ALL "
              "SELECT * FROM srvb.d.s.part_b");

  // Defaults: concat_dop = 4 (parallel branches), prefetch on — member
  // traffic flows on producer threads and must still land on the right
  // member's profile via the thread-installed charge sink.
  QueryResult r = MustExecute(&host_, "SELECT id, v FROM both_parts");
  ASSERT_NE(r.rowset, nullptr);
  ASSERT_NE(r.profile, nullptr);
  EXPECT_EQ(r.rowset->rows().size(), 800u);
  EXPECT_EQ(r.profile->rows_out.load(), 800);

  std::vector<const OperatorProfile*> nodes;
  FlattenProfile(*r.profile, &nodes);
  int64_t rsrv_wire_rows = 0, srvb_wire_rows = 0;
  for (const OperatorProfile* p : nodes) {
    if (p->link == "rsrv") rsrv_wire_rows += p->link_charges.rows.load();
    if (p->link == "srvb") srvb_wire_rows += p->link_charges.rows.load();
  }
  EXPECT_EQ(rsrv_wire_rows, 400);
  EXPECT_EQ(srvb_wire_rows, 400);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE rendering.
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, ExplainAnalyzeShowsEstimatedVsActual) {
  const std::string query =
      "SELECT i.id, c.cname FROM rsrv.d.s.items i "
      "JOIN categories c ON i.category = c.cid WHERE i.price < 50";

  QueryResult analyzed = MustExecute(&host_, "EXPLAIN ANALYZE " + query);
  ASSERT_NE(analyzed.rowset, nullptr);
  std::string plan = ResultText(analyzed);
  // Per-operator lines with ids, estimates vs. actuals and wall time.
  EXPECT_NE(plan.find("#1 "), std::string::npos) << plan;
  EXPECT_NE(plan.find("est_rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("act_rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("time_ms="), std::string::npos) << plan;
  // Remote traffic attributed to the link it used.
  EXPECT_NE(plan.find("link=rsrv"), std::string::npos) << plan;
  EXPECT_NE(plan.find("msgs="), std::string::npos) << plan;

  // Plain EXPLAIN carries the same operator ids plus estimates only — no
  // actuals (the statement is compiled, not run).
  QueryResult plain = MustExecute(&host_, "EXPLAIN " + query);
  ASSERT_NE(plain.rowset, nullptr);
  std::string estimated = ResultText(plain);
  EXPECT_NE(estimated.find("#1 "), std::string::npos) << estimated;
  EXPECT_NE(estimated.find("rows="), std::string::npos) << estimated;
  EXPECT_NE(estimated.find("cost="), std::string::npos) << estimated;
  EXPECT_EQ(estimated.find("act_rows="), std::string::npos) << estimated;
  EXPECT_EQ(plain.exec_stats.rows_output.load(), 0);
}

TEST_F(ObservabilityTest, ExplainAnalyzeReportsRetriesAndFaults) {
  const std::string stmt =
      "EXPLAIN ANALYZE SELECT id, price FROM rsrv.d.s.items";
  // Warm the plan cache so compile-time metadata round trips are out of the
  // ordinal stream, then fail one mid-stream result-block message: the scan
  // ships 2000 rows in 512-row blocks, so ordinal 3 is always a block fetch
  // charged to the remote scan operator.
  MustExecute(&host_, stmt);
  remote_.injector->Reset();
  remote_.injector->FailMessages(/*after=*/3, /*count=*/1);
  QueryResult r = MustExecute(&host_, stmt);
  remote_.injector->Reset();
  ASSERT_NE(r.rowset, nullptr);
  std::string plan = ResultText(r);
  EXPECT_NE(plan.find("retries=1"), std::string::npos) << plan;
  EXPECT_NE(plan.find("faults=1"), std::string::npos) << plan;
}

// ---------------------------------------------------------------------------
// Trace spans under a retry storm.
// ---------------------------------------------------------------------------

/// Checks that the spans of one thread form a proper nesting: sorted by
/// start (parents before children), every span lies inside the innermost
/// open span, and its recorded depth equals the nesting level.
void CheckWellFormed(std::vector<trace::SpanRecord> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const trace::SpanRecord& a, const trace::SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.dur_ns > b.dur_ns;
            });
  struct Open {
    int64_t end_ns;
  };
  std::vector<Open> stack;
  for (const trace::SpanRecord& s : spans) {
    ASSERT_GE(s.dur_ns, 0);
    int64_t end = s.start_ns + s.dur_ns;
    while (!stack.empty() && stack.back().end_ns <= s.start_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(end, stack.back().end_ns) << "span " << s.name
                                          << " escapes its parent";
    }
    EXPECT_EQ(s.depth, stack.size()) << "span " << s.name;
    stack.push_back(Open{end});
  }
}

TEST_F(ObservabilityTest, TracerSpansWellFormedUnderRetryStorm) {
  const std::string query = "SELECT id, category FROM rsrv.d.s.items";
  trace::Tracer& tracer = trace::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  // Warm run (records the compile spans), then a storm run: two back-to-back
  // failures on one block fetch (absorbed exactly at the 3-attempt budget)
  // plus one more transient a few messages later.
  MustExecute(&host_, query);
  remote_.injector->Reset();
  remote_.injector->FailMessages(/*after=*/3, /*count=*/2);
  remote_.injector->FailMessages(/*after=*/8, /*count=*/1);
  QueryResult r = MustExecute(&host_, query);
  remote_.injector->Reset();
  tracer.Disable();
  ASSERT_NE(r.rowset, nullptr);
  EXPECT_EQ(r.rowset->rows().size(), 2000u);

  std::vector<trace::SpanRecord> spans = tracer.Snapshot();
  EXPECT_EQ(tracer.dropped(), 0);
  ASSERT_FALSE(spans.empty());

  auto count_named = [&](const char* name) {
    return static_cast<int64_t>(
        std::count_if(spans.begin(), spans.end(),
                      [&](const trace::SpanRecord& s) {
                        return std::string(s.name) == name;
                      }));
  };
  // Host and remote engines share the process-wide tracer, so phase spans
  // appear at least once (host) and possibly more (shipped remote query).
  EXPECT_GE(count_named("engine.parse"), 1);
  EXPECT_GE(count_named("engine.bind"), 1);
  EXPECT_GE(count_named("engine.optimize"), 1);
  EXPECT_GE(count_named("engine.execute"), 1);
  EXPECT_GT(count_named("optimizer.phase"), 0);
  EXPECT_GT(count_named("link.send"), 0);
  // Every injected fault produced a fault-tagged attempt span and every
  // resend a backoff span; trace and ExecStats agree exactly.
  EXPECT_GE(r.exec_stats.faults_injected.load(), 2);
  EXPECT_GE(r.exec_stats.remote_retries.load(), 2);
  EXPECT_EQ(count_named("link.fault"), r.exec_stats.faults_injected.load());
  EXPECT_EQ(count_named("link.backoff"), r.exec_stats.remote_retries.load());

  // Fault spans carry the link name, attributing the storm to `rsrv`.
  for (const trace::SpanRecord& s : spans) {
    if (std::string(s.name) == "link.fault" ||
        std::string(s.name) == "link.backoff") {
      EXPECT_STREQ(s.detail, "rsrv");
    }
  }

  // Nesting is well-formed per thread (consumer and prefetch producers).
  std::map<uint32_t, std::vector<trace::SpanRecord>> by_tid;
  for (const trace::SpanRecord& s : spans) by_tid[s.tid].push_back(s);
  for (auto& [tid, thread_spans] : by_tid) {
    SCOPED_TRACE("tid " + std::to_string(tid));
    CheckWellFormed(std::move(thread_spans));
  }

  std::string json = tracer.DumpChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("link.backoff"), std::string::npos);
  tracer.Clear();
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, MetricsSnapshotDeterministicAcrossRuns) {
  // Prefetch off: queue-depth observations and producer scheduling are the
  // only timing-dependent counters on this path. Histograms (query_ns) stay
  // timing-dependent by design, so determinism is asserted on counters.
  host_.options()->execution.enable_remote_prefetch = false;
  const std::string query = "SELECT id, price FROM rsrv.d.s.items";
  MustExecute(&host_, query);  // Warm the plan cache: both runs are hits.

  auto counters_section = [](const std::string& snapshot) {
    size_t end = snapshot.find(",\"gauges\"");
    EXPECT_NE(end, std::string::npos);
    return snapshot.substr(0, end);
  };

  metrics::Registry& reg = metrics::Registry::Global();
  reg.ResetAll();
  MustExecute(&host_, query);
  std::string first = counters_section(reg.SnapshotJson());

  reg.ResetAll();
  MustExecute(&host_, query);
  std::string second = counters_section(reg.SnapshotJson());

  EXPECT_EQ(first, second);
  // Two hits per run: host statement plus the shipped remote query (both
  // engines publish into the one process-wide registry).
  EXPECT_NE(first.find("\"engine.plan_cache.hit\":2"), std::string::npos)
      << first;
  EXPECT_NE(first.find("\"link.rsrv.messages\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"exec.rows_output\""), std::string::npos) << first;
  host_.options()->execution.enable_remote_prefetch = true;
}

TEST(MetricsTest, HistogramBucketsSummaryAndReset) {
  metrics::Registry& reg = metrics::Registry::Global();
  metrics::Histogram* h = reg.GetHistogram("test.histogram");
  ASSERT_EQ(h, reg.GetHistogram("test.histogram"));  // Stable pointer.
  h->Reset();
  h->Observe(0);    // bucket 0: v < 1
  h->Observe(1);    // bucket 1: 1 <= v < 2
  h->Observe(7);    // bucket 3: 4 <= v < 8
  h->Observe(8);    // bucket 4: 8 <= v < 16
  EXPECT_EQ(h->Count(), 4);
  EXPECT_EQ(h->Sum(), 16);
  EXPECT_EQ(h->Min(), 0);
  EXPECT_EQ(h->Max(), 8);
  EXPECT_EQ(h->BucketCount(0), 1);
  EXPECT_EQ(h->BucketCount(1), 1);
  EXPECT_EQ(h->BucketCount(3), 1);
  EXPECT_EQ(h->BucketCount(4), 1);

  metrics::Counter* c = reg.GetCounter("test.counter");
  c->Add(41);
  c->Increment();
  EXPECT_EQ(c->Value(), 42);
  std::string snapshot = reg.SnapshotJson();
  EXPECT_NE(snapshot.find("\"test.counter\":42"), std::string::npos);
  EXPECT_NE(snapshot.find("\"test.histogram\""), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0);  // Pointer survives reset.
  EXPECT_EQ(h->Count(), 0);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target for tracer + registry hot paths).
// ---------------------------------------------------------------------------

TEST(TracerConcurrencyTest, ConcurrentRecordSnapshotAndCounters) {
  trace::Tracer& tracer = trace::Tracer::Global();
  constexpr size_t kCapacity = 1 << 12;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 4000;  // Overflows: exercises drop path.
  tracer.Enable(kCapacity);
  metrics::Counter* c =
      metrics::Registry::Global().GetCounter("test.concurrent");
  c->Reset();

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::Span span("test.span", "concurrent");
        c->Increment();
      }
    });
  }
  // Readers race the writers: snapshots must only see committed slots.
  for (int i = 0; i < 50; ++i) {
    std::vector<trace::SpanRecord> partial = tracer.Snapshot();
    EXPECT_LE(partial.size(), kCapacity);
    metrics::Registry::Global().SnapshotJson();
  }
  for (std::thread& w : workers) w.join();
  tracer.Disable();

  EXPECT_EQ(c->Value(), kThreads * kSpansPerThread);
  EXPECT_EQ(tracer.size() + static_cast<size_t>(tracer.dropped()),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_LE(tracer.size(), kCapacity);
  tracer.Clear();
}

}  // namespace
}  // namespace dhqp
