// Direct executor-node tests: construct physical operators by hand and
// drive them through Open/Next/Restart — independent of the optimizer's
// plan choices (merge join with duplicate runs, spool rescan behaviour,
// startup-filter gating, sort stability).

#include "tests/test_util.h"

namespace dhqp {
namespace {

// A leaf physical op backed by constant rows.
PhysicalOpBuilder ConstLeaf(std::vector<int> cols,
                            std::vector<DataType> types,
                            std::vector<Row> rows) {
  auto op = NewPhysicalOp(PhysicalOpKind::kConstTable);
  op->const_rows = std::move(rows);
  op->output_cols = std::move(cols);
  op->output_types = std::move(types);
  for (int c : op->output_cols) {
    op->output_names.push_back("c" + std::to_string(c));
  }
  op->estimated_rows = static_cast<double>(op->const_rows.size());
  return op;
}

Row R2(int64_t a, int64_t b) { return {Value::Int64(a), Value::Int64(b)}; }

class ExecNodesTest : public ::testing::Test {
 protected:
  ExecNodesTest() : catalog_(&storage_) {
    ctx_.catalog = &catalog_;
    ctx_.current_date = DefaultCurrentDate();
  }

  std::vector<Row> RunAll(const PhysicalOpPtr& plan) {
    auto result = ExecutePlan(plan, &ctx_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return (*result)->rows();
  }

  StorageEngine storage_;
  Catalog catalog_;
  ExecContext ctx_;
};

TEST_F(ExecNodesTest, MergeJoinDuplicateRunsBothSides) {
  // Sorted inputs with duplicate keys on both sides: the cross product per
  // key group must be complete. k=0: 2x2, k=2: 2x1, k=4: 1x2 -> 8 rows.
  auto left = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(0, 1), R2(0, 2), R2(1, 3), R2(2, 4), R2(2, 5),
                         R2(4, 6)});
  auto right = ConstLeaf({2, 3}, {DataType::kInt64, DataType::kInt64},
                         {R2(0, 10), R2(0, 11), R2(2, 12), R2(3, 13),
                          R2(4, 14), R2(4, 15)});
  auto join = NewPhysicalOp(PhysicalOpKind::kMergeJoin);
  join->join_type = JoinType::kInner;
  join->key_pairs.emplace_back(MakeColumn(0, DataType::kInt64, "l.k"),
                               MakeColumn(2, DataType::kInt64, "r.k"));
  join->children = {left, right};
  join->output_cols = {0, 1, 2, 3};
  join->output_types.assign(4, DataType::kInt64);
  join->output_names = {"lk", "lv", "rk", "rv"};

  std::vector<Row> rows = RunAll(join);
  EXPECT_EQ(rows.size(), 8u);
  // Every emitted pair agrees on the key.
  for (const Row& row : rows) {
    EXPECT_EQ(row[0].int64_value(), row[2].int64_value());
  }
}

TEST_F(ExecNodesTest, MergeJoinDisjointKeysEmpty) {
  auto left = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(1, 1), R2(3, 2)});
  auto right = ConstLeaf({2, 3}, {DataType::kInt64, DataType::kInt64},
                         {R2(2, 10), R2(4, 11)});
  auto join = NewPhysicalOp(PhysicalOpKind::kMergeJoin);
  join->join_type = JoinType::kInner;
  join->key_pairs.emplace_back(MakeColumn(0, DataType::kInt64, "l.k"),
                               MakeColumn(2, DataType::kInt64, "r.k"));
  join->children = {left, right};
  join->output_cols = {0, 1, 2, 3};
  join->output_types.assign(4, DataType::kInt64);
  join->output_names = {"lk", "lv", "rk", "rv"};
  EXPECT_EQ(RunAll(join).size(), 0u);
}

TEST_F(ExecNodesTest, SortIsStableAndHonorsDirections) {
  auto leaf = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(1, 1), R2(2, 2), R2(1, 3), R2(2, 4), R2(1, 5)});
  auto sort = NewPhysicalOp(PhysicalOpKind::kSort);
  sort->sort_keys = {{0, false}};  // k DESC; ties keep input order (stable).
  sort->children = {leaf};
  sort->output_cols = {0, 1};
  sort->output_types.assign(2, DataType::kInt64);
  sort->output_names = {"k", "v"};
  std::vector<Row> rows = RunAll(sort);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(RowToString(rows[0]), "(2, 2)");
  EXPECT_EQ(RowToString(rows[1]), "(2, 4)");
  EXPECT_EQ(RowToString(rows[2]), "(1, 1)");
  EXPECT_EQ(RowToString(rows[3]), "(1, 3)");
  EXPECT_EQ(RowToString(rows[4]), "(1, 5)");
}

TEST_F(ExecNodesTest, StartupFilterGatesAndReevaluates) {
  auto leaf = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(1, 10)});
  auto guard = NewPhysicalOp(PhysicalOpKind::kStartupFilter);
  guard->predicate = MakeComparison(">", MakeParam("@p", DataType::kInt64),
                                    MakeLiteral(Value::Int64(5)));
  guard->children = {leaf};
  guard->output_cols = {0, 1};
  guard->output_types.assign(2, DataType::kInt64);
  guard->output_names = {"k", "v"};

  ctx_.params["@p"] = Value::Int64(3);
  auto node = BuildExecTree(guard, &ctx_);
  ASSERT_TRUE(node.ok());
  ASSERT_OK((*node)->Open());
  Row row;
  auto next = (*node)->Next(&row);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);  // Guard false: child never produces.
  EXPECT_EQ(ctx_.stats.startup_skips, 1);

  // Restart with a passing parameter (what NL correlation does).
  ctx_.params["@p"] = Value::Int64(9);
  ASSERT_OK((*node)->Restart());
  next = (*node)->Next(&row);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(*next);
  EXPECT_EQ(RowToString(row), "(1, 10)");
}

TEST_F(ExecNodesTest, SpoolServesRescansFromMaterialization) {
  auto leaf = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(1, 1), R2(2, 2)});
  auto spool = NewPhysicalOp(PhysicalOpKind::kSpool);
  spool->children = {leaf};
  spool->output_cols = {0, 1};
  spool->output_types.assign(2, DataType::kInt64);
  spool->output_names = {"k", "v"};
  auto node = BuildExecTree(spool, &ctx_);
  ASSERT_TRUE(node.ok());
  ASSERT_OK((*node)->Open());
  Row row;
  int count = 0;
  while (*(*node)->Next(&row)) ++count;
  EXPECT_EQ(count, 2);
  ASSERT_OK((*node)->Restart());
  EXPECT_EQ(ctx_.stats.spool_rescans, 1);
  count = 0;
  while (*(*node)->Next(&row)) ++count;
  EXPECT_EQ(count, 2);
}

TEST_F(ExecNodesTest, TopBoundsOutput) {
  auto leaf = ConstLeaf({0, 1}, {DataType::kInt64, DataType::kInt64},
                        {R2(1, 1), R2(2, 2), R2(3, 3)});
  auto top = NewPhysicalOp(PhysicalOpKind::kTop);
  top->limit = 2;
  top->children = {leaf};
  top->output_cols = {0, 1};
  top->output_types.assign(2, DataType::kInt64);
  top->output_names = {"k", "v"};
  EXPECT_EQ(RunAll(top).size(), 2u);
}

}  // namespace
}  // namespace dhqp
