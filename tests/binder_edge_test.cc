// Binder edge cases: ambiguity, scoping, aggregate misuse, type errors,
// view recursion, ORDER BY forms.

#include "tests/test_util.h"

namespace dhqp {
namespace {

class BinderEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_, "CREATE TABLE t1 (id INT PRIMARY KEY, v INT)");
    MustExecute(&engine_, "CREATE TABLE t2 (id INT PRIMARY KEY, w INT)");
    MustExecute(&engine_, "INSERT INTO t1 VALUES (1, 10), (2, 20)");
    MustExecute(&engine_, "INSERT INTO t2 VALUES (1, 100), (3, 300)");
  }

  StatusCode CodeOf(const std::string& sql) {
    auto r = engine_.Execute(sql);
    return r.ok() ? StatusCode::kOk : r.status().code();
  }

  Engine engine_;
};

TEST_F(BinderEdgeTest, AmbiguousColumnRejected) {
  EXPECT_EQ(CodeOf("SELECT id FROM t1, t2"), StatusCode::kInvalidArgument);
  // Qualification resolves it.
  EXPECT_EQ(CodeOf("SELECT t1.id FROM t1, t2"), StatusCode::kOk);
}

TEST_F(BinderEdgeTest, DuplicateAliasRejected) {
  EXPECT_EQ(CodeOf("SELECT * FROM t1 a, t2 a"), StatusCode::kInvalidArgument);
  EXPECT_EQ(CodeOf("SELECT * FROM t1, t1"), StatusCode::kInvalidArgument);
  // Self-join with distinct aliases works.
  QueryResult r = MustExecute(
      &engine_, "SELECT a.id, b.id FROM t1 a JOIN t1 b ON a.id = b.id "
                "ORDER BY a.id");
  EXPECT_EQ(RowsToString(r), "(1, 1)(2, 2)");
}

TEST_F(BinderEdgeTest, UnknownObjects) {
  EXPECT_EQ(CodeOf("SELECT * FROM missing"), StatusCode::kNotFound);
  EXPECT_EQ(CodeOf("SELECT nope FROM t1"), StatusCode::kNotFound);
  EXPECT_EQ(CodeOf("SELECT * FROM nosrv.a.b.c"), StatusCode::kNotFound);
  EXPECT_EQ(CodeOf("SELECT UNKNOWNFN(v) FROM t1"), StatusCode::kNotFound);
}

TEST_F(BinderEdgeTest, AggregateMisuse) {
  // Aggregate in WHERE is rejected.
  EXPECT_NE(CodeOf("SELECT v FROM t1 WHERE SUM(v) > 5"), StatusCode::kOk);
  // Non-grouped column in aggregate query fails to bind.
  EXPECT_NE(CodeOf("SELECT v, COUNT(*) FROM t1 GROUP BY id"),
            StatusCode::kOk);
  // '*' only valid in COUNT.
  EXPECT_NE(CodeOf("SELECT SUM(*) FROM t1"), StatusCode::kOk);
}

TEST_F(BinderEdgeTest, GroupByExpression) {
  MustExecute(&engine_, "INSERT INTO t1 VALUES (3, 10)");
  QueryResult r = MustExecute(
      &engine_, "SELECT v * 2, COUNT(*) FROM t1 GROUP BY v * 2 ORDER BY 1");
  EXPECT_EQ(RowsToString(r), "(20, 2)(40, 1)");
}

TEST_F(BinderEdgeTest, OrderByForms) {
  // Ordinal, alias, hidden column, expression.
  EXPECT_EQ(RowsToString(MustExecute(
                &engine_, "SELECT id, v FROM t1 ORDER BY 2 DESC")),
            "(2, 20)(1, 10)");
  EXPECT_EQ(RowsToString(MustExecute(
                &engine_, "SELECT v AS pay FROM t1 ORDER BY pay DESC")),
            "(20)(10)");
  EXPECT_EQ(RowsToString(MustExecute(
                &engine_, "SELECT id FROM t1 ORDER BY v DESC")),
            "(2)(1)");
  EXPECT_EQ(RowsToString(MustExecute(
                &engine_, "SELECT id FROM t1 ORDER BY v * -1")),
            "(2)(1)");
  // Out-of-range ordinal.
  EXPECT_EQ(CodeOf("SELECT id FROM t1 ORDER BY 9"),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderEdgeTest, UnionAllShapeChecks) {
  EXPECT_EQ(CodeOf("SELECT id, v FROM t1 UNION ALL SELECT id FROM t2"),
            StatusCode::kInvalidArgument);
  // ORDER BY over a union resolves names/ordinals.
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM t1 UNION ALL SELECT id FROM t2 ORDER BY id DESC");
  EXPECT_EQ(RowsToString(r), "(3)(2)(1)(1)");
}

TEST_F(BinderEdgeTest, RecursiveViewRejected) {
  MustExecute(&engine_, "CREATE VIEW v1 AS SELECT * FROM t1");
  // A view cannot shadow an existing object, and a self-referencing chain
  // must terminate with an error rather than loop.
  EXPECT_EQ(CodeOf("CREATE VIEW v1 AS SELECT * FROM t2"),
            StatusCode::kAlreadyExists);
  // A dangling reference inside a view surfaces as NotFound at use.
  MustExecute(&engine_, "CREATE VIEW v2 AS SELECT * FROM v3x");
  EXPECT_EQ(CodeOf("SELECT * FROM v2"), StatusCode::kNotFound);
  // A mutual-recursion cycle trips the nesting-depth guard.
  MustExecute(&engine_, "CREATE VIEW va AS SELECT * FROM vb");
  MustExecute(&engine_, "CREATE VIEW vb AS SELECT * FROM va");
  EXPECT_EQ(CodeOf("SELECT * FROM va"), StatusCode::kInvalidArgument);
}

TEST_F(BinderEdgeTest, CorrelatedSubqueryDepth) {
  // Nested EXISTS two levels deep with correlation to the outermost scope.
  QueryResult r = MustExecute(
      &engine_,
      "SELECT id FROM t1 WHERE EXISTS (SELECT * FROM t2 WHERE t2.id = t1.id "
      "AND EXISTS (SELECT * FROM t1 x WHERE x.id = t2.id))");
  EXPECT_EQ(RowsToString(r), "(1)");
}

TEST_F(BinderEdgeTest, ParameterTypeInference) {
  // Params adopt the column type: a date column compared to @d accepts a
  // string-typed value at execution via the inferred cast.
  MustExecute(&engine_, "CREATE TABLE ev (d DATE)");
  MustExecute(&engine_, "INSERT INTO ev VALUES ('2004-01-02')");
  QueryResult r = MustExecute(&engine_, "SELECT COUNT(*) FROM ev WHERE d = @d",
                              {{"@d", Value::String("2004-01-02")}});
  EXPECT_EQ(RowsToString(r), "(1)");
}

TEST_F(BinderEdgeTest, TypeErrorsSurface) {
  EXPECT_NE(CodeOf("SELECT v + 'abc' FROM t1"), StatusCode::kOk);
  EXPECT_NE(CodeOf("SELECT UPPER(v, v) FROM t1"), StatusCode::kOk);
}

}  // namespace
}  // namespace dhqp
