// Normalization (simplification-phase) unit tests: filter pushdown shapes,
// locality join grouping, startup-filter synthesis — inspected on the
// logical tree before memo insertion.

#include <gtest/gtest.h>

#include "src/optimizer/normalize.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

// Counts logical nodes of a kind.
int CountLogical(const LogicalOpPtr& tree, LogicalOpKind kind) {
  int n = tree->kind == kind ? 1 : 0;
  for (const auto& c : tree->children) n += CountLogical(c, kind);
  return n;
}

// Finds the first node of a kind (pre-order).
LogicalOpPtr FindLogical(const LogicalOpPtr& tree, LogicalOpKind kind) {
  if (tree->kind == kind) return tree;
  for (const auto& c : tree->children) {
    LogicalOpPtr found = FindLogical(c, kind);
    if (found != nullptr) return found;
  }
  return nullptr;
}

class NormalizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&engine_, "CREATE TABLE a (x INT PRIMARY KEY, av INT)");
    MustExecute(&engine_, "CREATE TABLE b (x INT PRIMARY KEY, bv INT)");
    remote_ = AttachRemoteEngine(&engine_, "r");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE c (x INT PRIMARY KEY, cy INT)");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE d (x INT PRIMARY KEY, dy INT)");
  }

  // Binds + normalizes a SELECT; returns the normalized logical tree.
  LogicalOpPtr NormalizeSql(const std::string& sql) {
    auto parsed = Parser::ParseSelect(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Binder binder(engine_.catalog());
    auto bound = binder.BindSelect(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    registry_ = bound->registry;
    ctx_ = std::make_unique<OptimizerContext>(
        engine_.catalog(), registry_.get(), engine_.options()->optimizer);
    return Normalize(bound->root, ctx_.get());
  }

  Engine engine_;
  RemoteServer remote_;
  std::shared_ptr<ColumnRegistry> registry_;
  std::unique_ptr<OptimizerContext> ctx_;
};

TEST_F(NormalizeTest, SingleSideConjunctsSinkBelowJoin) {
  LogicalOpPtr tree = NormalizeSql(
      "SELECT a.av FROM a JOIN b ON a.x = b.x WHERE a.av > 5 AND b.bv < 3");
  // The WHERE filter split: one filter directly above each Get.
  LogicalOpPtr join = FindLogical(tree, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->children[0]->kind, LogicalOpKind::kFilter);
  EXPECT_EQ(join->children[1]->kind, LogicalOpKind::kFilter);
  EXPECT_EQ(join->children[0]->children[0]->kind, LogicalOpKind::kGet);
}

TEST_F(NormalizeTest, CrossJoinConjunctBecomesJoinPredicate) {
  LogicalOpPtr tree =
      NormalizeSql("SELECT a.av FROM a, b WHERE a.x = b.x");
  LogicalOpPtr join = FindLogical(tree, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, JoinType::kInner);
  ASSERT_NE(join->predicate, nullptr);
  EXPECT_NE(join->predicate->ToString().find("="), std::string::npos);
}

TEST_F(NormalizeTest, StackedFiltersCollapse) {
  // View expansion stacks filters; normalization merges them.
  MustExecute(&engine_, "CREATE VIEW av AS SELECT * FROM a WHERE av > 0");
  LogicalOpPtr tree = NormalizeSql("SELECT x FROM av WHERE x < 10");
  // No Filter whose child is another Filter.
  std::function<bool(const LogicalOpPtr&)> stacked =
      [&](const LogicalOpPtr& node) {
        if (node->kind == LogicalOpKind::kFilter &&
            node->children[0]->kind == LogicalOpKind::kFilter) {
          return true;
        }
        for (const auto& c : node->children) {
          if (stacked(c)) return true;
        }
        return false;
      };
  EXPECT_FALSE(stacked(tree));
}

TEST_F(NormalizeTest, LocalityGroupingMakesRemotePairAdjacent) {
  // a (local), c (remote), b (local), d (remote) joined in a chain through
  // x: locality grouping must rebuild so c and d form one remote subtree.
  LogicalOpPtr tree = NormalizeSql(
      "SELECT a.av FROM a, r.db.s.c c, b, r.db.s.d d "
      "WHERE a.x = c.x AND c.x = b.x AND b.x = d.x");
  // Find a join whose entire subtree is remote (both c and d below it).
  std::function<bool(const LogicalOpPtr&, int*)> remote_pair_exists =
      [&](const LogicalOpPtr& node, int* remote_gets) -> bool {
    if (node->kind == LogicalOpKind::kGet) {
      *remote_gets = node->table.source_id != kLocalSource ? 1 : 0;
      return false;
    }
    int total = 0;
    bool found = false;
    for (const auto& c : node->children) {
      int sub = 0;
      found |= remote_pair_exists(c, &sub);
      total += sub;
    }
    *remote_gets = total;
    if (node->kind == LogicalOpKind::kJoin && total == 2) {
      // Both remote tables and nothing local in this subtree?
      std::function<bool(const LogicalOpPtr&)> any_local =
          [&](const LogicalOpPtr& n) {
            if (n->kind == LogicalOpKind::kGet) {
              return n->table.source_id == kLocalSource;
            }
            for (const auto& ch : n->children) {
              if (any_local(ch)) return true;
            }
            return false;
          };
      if (!any_local(node)) return true;
    }
    return found;
  };
  int dummy = 0;
  EXPECT_TRUE(remote_pair_exists(tree, &dummy)) << tree->ToString();

  // Ablation: with grouping off, the chain order (a, c, b, d) keeps the
  // remote tables separated.
  engine_.options()->optimizer.enable_locality_grouping = false;
  LogicalOpPtr ungrouped = NormalizeSql(
      "SELECT a.av FROM a, r.db.s.c c, b, r.db.s.d d "
      "WHERE a.x = c.x AND c.x = b.x AND b.x = d.x");
  dummy = 0;
  EXPECT_FALSE(remote_pair_exists(ungrouped, &dummy)) << ungrouped->ToString();
}

TEST_F(NormalizeTest, UnionBranchGetsStartupFilter) {
  MustExecute(&engine_,
              "CREATE TABLE p1 (k INT NOT NULL CHECK (k BETWEEN 1 AND 10), "
              "v INT)");
  MustExecute(&engine_,
              "CREATE TABLE p2 (k INT NOT NULL CHECK (k BETWEEN 11 AND 20), "
              "v INT)");
  MustExecute(&engine_, "CREATE VIEW pv AS SELECT * FROM p1 UNION ALL "
                        "SELECT * FROM p2");
  LogicalOpPtr tree = NormalizeSql("SELECT v FROM pv WHERE k = @k");
  // Each branch carries a column-free guard filter above the pushed filter.
  LogicalOpPtr union_all = FindLogical(tree, LogicalOpKind::kUnionAll);
  ASSERT_NE(union_all, nullptr);
  int guards = 0;
  for (const auto& branch : union_all->children) {
    if (branch->kind == LogicalOpKind::kFilter &&
        branch->predicate->IsColumnFree()) {
      ++guards;
    }
  }
  EXPECT_EQ(guards, 2) << tree->ToString();
}

TEST_F(NormalizeTest, SemiJoinKeepsLeftPushdownOnly) {
  LogicalOpPtr tree = NormalizeSql(
      "SELECT av FROM a WHERE av > 1 AND EXISTS "
      "(SELECT * FROM b WHERE b.x = a.x AND b.bv = 7)");
  LogicalOpPtr join = FindLogical(tree, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, JoinType::kSemi);
  // The uncorrelated conjunct b.bv = 7 sank into the right side.
  EXPECT_EQ(CountLogical(join->children[1], LogicalOpKind::kFilter), 1);
}

}  // namespace
}  // namespace dhqp
