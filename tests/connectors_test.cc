// Heterogeneous provider tests: CSV, mail, sheets, capability presets,
// dialect round trips, and the Table 1 / Table 2 introspection.

#include "src/connectors/csv_provider.h"
#include "src/connectors/mail_provider.h"
#include "src/connectors/sheet_provider.h"
#include "src/workloads/documents.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

TEST(CsvProviderTest, SniffsTypesAndScans) {
  auto csv = std::make_shared<CsvDataSource>();
  ASSERT_OK(csv->AddTable("people",
                          "name,age,score,joined\n"
                          "alice,30,9.5,2001-05-04\n"
                          "bob,41,7.25,1999-12-31\n"));
  auto session = csv->CreateSession();
  ASSERT_TRUE(session.ok());
  auto tables = (*session)->ListTables();
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  const Schema& schema = (*tables)[0].schema;
  EXPECT_EQ(schema.column(0).type, DataType::kString);
  EXPECT_EQ(schema.column(1).type, DataType::kInt64);
  EXPECT_EQ(schema.column(2).type, DataType::kDouble);
  EXPECT_EQ(schema.column(3).type, DataType::kDate);
}

TEST(CsvProviderTest, QueryableThroughLinkedServer) {
  Engine host;
  auto csv = std::make_shared<CsvDataSource>();
  ASSERT_OK(csv->AddTable("people",
                          "name,age\nalice,30\nbob,41\ncarol,29\n"));
  auto link = std::make_unique<net::Link>("csvsrv");
  ASSERT_OK(host.AddLinkedServer(
      "csvsrv", std::make_shared<LinkedDataSource>(csv, link.get())));
  QueryResult r = MustExecute(
      &host, "SELECT name FROM csvsrv.files.dbo.people WHERE age < 35 "
             "ORDER BY name");
  EXPECT_EQ(RowsToString(r), "(alice)(carol)");
  // Simple provider: no remote query possible; the host filtered locally.
  EXPECT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 0);
}

TEST(MailProviderTest, SalesmanScenario) {
  // §2.4: mail from Seattle customers within the last two days with no
  // reply yet, joined against an Access-style Customers table.
  Engine host;
  int64_t today = DefaultCurrentDate();
  std::vector<MailMessage> mailbox = {
      {1, "ann@contoso.com", "smith@example.com", "order", "need pricing",
       today - 1, -1},
      {2, "li@fabrikam.com", "smith@example.com", "hello", "checking in",
       today - 1, -1},
      {3, "smith@example.com", "ann@contoso.com", "re: order", "sent!",
       today - 1, 1},  // Reply to msg 1.
      {4, "omar@northwind.com", "smith@example.com", "old", "stale mail",
       today - 30, -1},
  };
  auto mail = std::make_shared<MailDataSource>(std::move(mailbox));
  ASSERT_OK(host.AddLinkedServer("mailsrv", mail));

  // The "Access" Customers table.
  Engine access_db;
  MustExecute(&access_db,
              "CREATE TABLE Customers (Emailaddr VARCHAR(40), "
              "City VARCHAR(20), Address VARCHAR(60))");
  MustExecute(&access_db,
              "INSERT INTO Customers VALUES "
              "('ann@contoso.com','Seattle','1 Pine St'),"
              "('li@fabrikam.com','Seattle','9 Oak Ave'),"
              "('omar@northwind.com','Portland','4 Elm Rd')");
  auto provider =
      std::make_shared<EngineDataSource>(&access_db, AccessCapabilities());
  ASSERT_OK(host.AddLinkedServer("accesssrv", provider));

  QueryResult r = MustExecute(
      &host,
      "SELECT m1.MsgId, c.Address "
      "FROM mailsrv.mmf.dbo.inbox m1, accesssrv.mdb.dbo.Customers c "
      "WHERE m1.MsgDate >= DATE(TODAY(), -2) AND m1.FromAddr = c.Emailaddr "
      "AND c.City = 'Seattle' AND NOT EXISTS "
      "(SELECT * FROM mailsrv.mmf.dbo.inbox m2 WHERE m1.MsgId = m2.InReplyTo)"
      " ORDER BY m1.MsgId");
  // Msg 1 was replied to; msg 2 qualifies; msg 4 is too old.
  EXPECT_EQ(RowsToString(r), "(2, 9 Oak Ave)");
}

TEST(SheetProviderTest, JoinsSheetWithLocalTable) {
  Engine host;
  auto sheets = std::make_shared<SheetDataSource>();
  Schema schema;
  schema.AddColumn(ColumnDef{"region", DataType::kString, true});
  schema.AddColumn(ColumnDef{"target", DataType::kInt64, true});
  ASSERT_OK(sheets->AddSheet("targets", schema,
                             {{Value::String("west"), Value::Int64(100)},
                              {Value::String("east"), Value::Int64(80)}}));
  ASSERT_OK(host.AddLinkedServer("xlsrv", sheets));
  MustExecute(&host, "CREATE TABLE sales (region VARCHAR(10), amount INT)");
  MustExecute(&host, "INSERT INTO sales VALUES ('west', 120), ('east', 60)");
  QueryResult r = MustExecute(
      &host,
      "SELECT s.region FROM sales s JOIN xlsrv.book.dbo.targets t "
      "ON s.region = t.region WHERE s.amount > t.target");
  EXPECT_EQ(RowsToString(r), "(west)");
}

TEST(DialectTest, AccessProviderGetsHashDates) {
  // The decoder must phrase date literals per the provider's dialect
  // (§4.1.3). Access-style: #1994-06-15#.
  Engine host;
  Engine access_db;
  MustExecute(&access_db,
              "CREATE TABLE Orders (id INT, odate DATE)");
  MustExecute(&access_db,
              "INSERT INTO Orders VALUES (1,'1994-06-15'),(2,'1995-01-01')");
  ASSERT_OK(host.AddLinkedServer(
      "acc", std::make_shared<EngineDataSource>(&access_db,
                                                AccessCapabilities())));
  QueryResult r = MustExecute(
      &host, "SELECT id FROM acc.d.s.Orders WHERE odate = '1994-06-15'");
  EXPECT_EQ(RowsToString(r), "(1)");
  ASSERT_EQ(CountOps(r.plan, PhysicalOpKind::kRemoteQuery), 1);
  PhysicalOpPtr node = r.plan;
  while (node->kind != PhysicalOpKind::kRemoteQuery) node = node->children[0];
  EXPECT_NE(node->remote_sql.find("#1994-06-15#"), std::string::npos)
      << node->remote_sql;
}

TEST(DialectTest, Db2GetsNoNestedCapabilities) {
  // DB2 preset: SQL-92 Entry — group-by can be remoted, but semi joins
  // cannot (no nested selects); Oracle preset spells dates as DATE 'x'.
  Engine host;
  Engine oracle_db;
  MustExecute(&oracle_db, "CREATE TABLE t (id INT, d DATE)");
  MustExecute(&oracle_db, "INSERT INTO t VALUES (1,'2000-02-02')");
  ASSERT_OK(host.AddLinkedServer(
      "ora", std::make_shared<EngineDataSource>(&oracle_db,
                                                OracleCapabilities())));
  QueryResult r = MustExecute(
      &host, "SELECT id FROM ora.d.s.t WHERE d = '2000-02-02'");
  EXPECT_EQ(RowsToString(r), "(1)");
  PhysicalOpPtr node = r.plan;
  while (node != nullptr && node->kind != PhysicalOpKind::kRemoteQuery) {
    node = node->children.empty() ? nullptr : node->children[0];
  }
  ASSERT_NE(node, nullptr);
  EXPECT_NE(node->remote_sql.find("DATE '2000-02-02'"), std::string::npos)
      << node->remote_sql;
}

TEST(CapabilityIntrospectionTest, Table1LanguagesAndTable2Interfaces) {
  // Table 1: each provider reports its source type and query language.
  ProviderCapabilities sql = SqlServerCapabilities();
  EXPECT_EQ(sql.query_language, "Microsoft Transact-SQL");
  CsvDataSource csv;
  EXPECT_EQ(csv.capabilities().query_language, "none");

  // Table 2: mandatory interfaces always present; optional ones follow the
  // capability flags.
  auto ifaces = sql.SupportedInterfaces();
  auto has = [&](const char* name) {
    return std::find(ifaces.begin(), ifaces.end(), name) != ifaces.end();
  };
  EXPECT_TRUE(has("IDBInitialize"));
  EXPECT_TRUE(has("IDBCreateSession"));
  EXPECT_TRUE(has("IOpenRowset"));
  EXPECT_TRUE(has("IDBCreateCommand"));
  EXPECT_TRUE(has("IRowsetIndex"));

  auto csv_ifaces = csv.capabilities().SupportedInterfaces();
  auto csv_has = [&](const char* name) {
    return std::find(csv_ifaces.begin(), csv_ifaces.end(), name) !=
           csv_ifaces.end();
  };
  EXPECT_TRUE(csv_has("IOpenRowset"));
  EXPECT_FALSE(csv_has("IDBCreateCommand"));
  EXPECT_FALSE(csv_has("IRowsetIndex"));
}

TEST(PassThroughTest, OpenQueryStyleExecution) {
  // §3.3: pass-through queries against a query provider (OpenQuery).
  Engine host;
  Engine remote_db;
  MustExecute(&remote_db, "CREATE TABLE r (a INT)");
  MustExecute(&remote_db, "INSERT INTO r VALUES (1),(2),(3)");
  ASSERT_OK(host.AddLinkedServer(
      "rmt", std::make_shared<EngineDataSource>(&remote_db)));
  auto rowset = host.ExecutePassThrough("rmt", "SELECT a FROM r WHERE a >= 2");
  ASSERT_TRUE(rowset.ok()) << rowset.status().ToString();
  auto rows = DrainRowset(rowset->get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

}  // namespace
}  // namespace dhqp
