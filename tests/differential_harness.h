#ifndef DHQP_TESTS_DIFFERENTIAL_HARNESS_H_
#define DHQP_TESTS_DIFFERENTIAL_HARNESS_H_

// Shared differential-execution harness: run one statement under several
// execution modes — (dop, exec_batch_rows) pairs — and assert the
// mode-invariant surface agrees: result multiset, warnings, outcome code,
// and the stats that must not depend on how the plan was driven. Used by
// the batch-size suite (batch_exec_test.cc), the DOP suite
// (exchange_exec_test.cc), and the chaos schedules (dop x fault replay).

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/waits.h"
#include "src/executor/profile.h"
#include "tests/test_util.h"

namespace dhqp {

/// Sorted multiset fingerprint of a result: row order is not part of the
/// comparable surface (gather arrival order is nondeterministic; ORDER BY
/// queries still agree because equal multisets with equal sorts are equal).
inline std::string Fingerprint(const QueryResult& r) {
  std::vector<std::string> rows;
  if (r.rowset != nullptr) {
    for (const Row& row : r.rowset->rows()) rows.push_back(RowToString(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& s : rows) out += s + "\n";
  return out;
}

inline std::string JoinWarnings(const QueryResult& r) {
  std::string out;
  for (const std::string& w : r.warnings) out += w + "\n";
  return out;
}

/// One execution mode of the differential cross: parallelism degree and
/// local batch size.
struct ExecMode {
  int dop = 1;
  int batch_rows = 0;

  std::string Label() const {
    return "dop=" + std::to_string(dop) +
           " exec_batch_rows=" + std::to_string(batch_rows);
  }
};

/// One execution's comparable surface: result multiset, warnings, and the
/// stats that must be mode-invariant.
struct Observation {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string fingerprint;
  std::string warnings;
  int64_t rows_output = 0;
  int64_t rows_from_remote = 0;
  int64_t exec_batches = 0;
  int64_t exec_batch_rows = 0;
  int64_t parallel_workers = 0;  ///< Exchange workers + Concat branches.
  int exchange_ops = 0;          ///< Exchange operators in the chosen plan.
  waits::WaitTotals wait_totals;          ///< Per-query wait accounting.
  waits::WaitTotals profile_wait_totals;  ///< Sum over the operator tree.
};

/// Per-type sum of the wait tallies across an operator profile tree.
inline void SumProfileWaits(const OperatorProfile& p, waits::WaitTotals* out) {
  for (int i = 0; i < waits::kNumWaitTypes; ++i) {
    const auto type = static_cast<waits::WaitType>(i);
    out->count[i] += p.wait_tally.CountFor(type);
    out->ns[i] += p.wait_tally.NsFor(type);
  }
  for (const auto& child : p.children) SumProfileWaits(*child, out);
}

inline Observation Observe(Engine* host, const std::string& sql,
                           const ExecMode& mode) {
  host->options()->execution.dop = mode.dop;
  host->options()->execution.exec_batch_rows = mode.batch_rows;
  Observation obs;
  auto result = host->Execute(sql);
  obs.ok = result.ok();
  if (!result.ok()) {
    obs.code = result.status().code();
    return obs;
  }
  obs.fingerprint = Fingerprint(*result);
  obs.warnings = JoinWarnings(*result);
  obs.rows_output = result->exec_stats.rows_output;
  obs.rows_from_remote = result->exec_stats.rows_from_remote;
  obs.exec_batches = result->exec_stats.exec_batches;
  obs.exec_batch_rows = result->exec_stats.exec_batch_rows;
  obs.parallel_workers = result->exec_stats.parallel_workers();
  obs.exchange_ops = CountOps(result->plan, PhysicalOpKind::kExchange);
  obs.wait_totals = result->wait_totals;
  if (result->profile != nullptr) {
    SumProfileWaits(*result->profile, &obs.profile_wait_totals);
  }
  return obs;
}

/// Back-compat entry point for the batch suite: serial, vary batch size.
inline Observation Observe(Engine* host, const std::string& sql,
                           int batch_rows) {
  return Observe(host, sql, ExecMode{/*dop=*/1, batch_rows});
}

/// Asserts the mode-invariant parts of two observations agree. `mode` names
/// the non-base mode in failure messages. Remote row counts are optionally
/// excluded: semi-join early termination may legitimately pull a different
/// number of remote rows per mode without changing the answer.
inline void ExpectEquivalent(const Observation& base, const Observation& obs,
                             const std::string& sql, const std::string& mode,
                             bool compare_remote_rows = true) {
  EXPECT_EQ(base.ok, obs.ok) << sql << " (" << mode << ")";
  if (!base.ok || !obs.ok) {
    EXPECT_EQ(base.code, obs.code) << sql << " (" << mode << ")";
    return;
  }
  EXPECT_EQ(base.fingerprint, obs.fingerprint) << sql << " (" << mode << ")";
  EXPECT_EQ(base.warnings, obs.warnings) << sql << " (" << mode << ")";
  EXPECT_EQ(base.rows_output, obs.rows_output) << sql << " (" << mode << ")";
  if (compare_remote_rows) {
    EXPECT_EQ(base.rows_from_remote, obs.rows_from_remote)
        << sql << " (" << mode << ")";
  }
}

/// Asserts one observation's wait accounting is internally sane. Wait
/// *amounts* are never part of the mode-invariant surface (they measure how
/// the plan was driven, which is exactly what varies across modes); what
/// must hold in every mode:
///   - no wait type went negative,
///   - operator-tree attribution never exceeds the per-query total for any
///     type (each blocked interval is charged to at most one operator and
///     exactly once to the query — double counting would break this),
///   - serial executions (no exchange in the plan) report zero
///     exchange-queue waits.
inline void ExpectWaitsSane(const Observation& obs, const std::string& sql,
                            const std::string& mode) {
  for (int i = 0; i < waits::kNumWaitTypes; ++i) {
    const auto type = static_cast<waits::WaitType>(i);
    EXPECT_GE(obs.wait_totals.count[i], 0)
        << sql << " (" << mode << ") " << waits::Name(type);
    EXPECT_GE(obs.wait_totals.ns[i], 0)
        << sql << " (" << mode << ") " << waits::Name(type);
    EXPECT_LE(obs.profile_wait_totals.count[i], obs.wait_totals.count[i])
        << sql << " (" << mode << ") " << waits::Name(type)
        << ": operator tree charged more waits than the query recorded";
  }
  if (obs.exchange_ops == 0) {
    EXPECT_EQ(obs.wait_totals.count[static_cast<int>(
                  waits::WaitType::kExchangeQueuePush)],
              0)
        << sql << " (" << mode << ")";
    EXPECT_EQ(obs.wait_totals.count[static_cast<int>(
                  waits::WaitType::kExchangeQueuePop)],
              0)
        << sql << " (" << mode << ")";
  }
}

/// One source table for the query generator.
struct QuerySource {
  std::string sql;    ///< FROM-clause spelling (possibly four-part).
  std::string alias;  ///< Alias; equal to sql for local tables.
};

/// Seeded generator of distributed queries over a pool of tables that all
/// share an integer join column `a`: random joins on `a`, random range
/// predicates with constants in [0, max_const], occasional GROUP BY
/// aggregates. Same shape as the optimizer differential suite. Only integer
/// columns are touched, so results are exact under any evaluation order —
/// what makes the fingerprints comparable across dop.
class DifferentialQueryGenerator {
 public:
  DifferentialQueryGenerator(uint64_t seed, std::vector<QuerySource> pool,
                             int64_t max_const = 120)
      : rng_(seed), pool_(std::move(pool)), max_const_(max_const) {}

  std::string Next() {
    int n = static_cast<int>(rng_.Uniform(1, 3));
    std::vector<QuerySource> from;
    for (int i = 0; i < n; ++i) {
      from.push_back(pool_[static_cast<size_t>(
          rng_.Uniform(0, static_cast<int64_t>(pool_.size()) - 1))]);
      for (int j = 0; j < i; ++j) {
        if (from.back().alias == from[static_cast<size_t>(j)].alias) {
          from.pop_back();
          --i;
          break;
        }
      }
    }

    std::string sql = "SELECT ";
    bool aggregate = rng_.Uniform(0, 3) == 0;
    std::string group_col = from[0].alias + ".a";
    if (aggregate) {
      sql += group_col + ", COUNT(*), SUM(" + from[0].alias + ".a)";
    } else {
      sql += "*";
    }
    sql += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i) sql += ", ";
      sql += from[i].sql + " " +
             (from[i].alias == from[i].sql ? "" : from[i].alias);
    }
    std::vector<std::string> conjuncts;
    for (size_t i = 1; i < from.size(); ++i) {
      conjuncts.push_back(from[i - 1].alias + ".a = " + from[i].alias + ".a");
    }
    int preds = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < preds; ++i) {
      const QuerySource& src = from[static_cast<size_t>(
          rng_.Uniform(0, static_cast<int64_t>(from.size()) - 1))];
      const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
      conjuncts.push_back(src.alias + ".a " + ops[rng_.Uniform(0, 5)] + " " +
                          std::to_string(rng_.Uniform(0, max_const_)));
    }
    if (!conjuncts.empty()) {
      sql += " WHERE ";
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i) sql += " AND ";
        sql += conjuncts[i];
      }
    }
    if (aggregate) sql += " GROUP BY " + group_col;
    return sql;
  }

 private:
  Rng rng_;
  std::vector<QuerySource> pool_;
  int64_t max_const_;
};

}  // namespace dhqp

#endif  // DHQP_TESTS_DIFFERENTIAL_HARNESS_H_
