// Differential coverage for batch-at-a-time execution: every query runs
// under exec_batch_rows in {0, 1, 3, 1024} — classic row-at-a-time, the
// degenerate one-row batch, a deliberately awkward size that never aligns
// with operator buffers, and the production default — and must produce
// identical result multisets, warnings, and ExecStats row counts. Covers a
// fixed semantics corpus (NULL logic, aggregates, DISTINCT, joins, LIKE,
// TOP, subqueries with Restart mid-batch), randomly generated distributed
// queries, and a seeded fault schedule on the remote link.

#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "tests/differential_harness.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

const int kBatchSizes[] = {0, 1, 3, 1024};

// Failure-message label and comparison via the shared harness.
void ExpectEquivalent(const Observation& base, const Observation& obs,
                      const std::string& sql, int batch_rows,
                      bool compare_remote_rows = true) {
  dhqp::ExpectEquivalent(base, obs, sql,
                         "exec_batch_rows=" + std::to_string(batch_rows),
                         compare_remote_rows);
}

// ---------------------------------------------------------------------------
// Fixed semantics corpus over a local + remote topology.
// ---------------------------------------------------------------------------

class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    remote_ = AttachRemoteEngine(&host_, "rsrv");
    MustExecute(&host_,
                "CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR(8))");
    MustExecute(&host_,
                "INSERT INTO t VALUES (1, 10, 'abc'), (2, NULL, 'abd'), "
                "(3, 7, NULL), (4, 10, 'xyz'), (5, -3, 'ab'), "
                "(110, 4, 'q'), (120, NULL, NULL)");
    MustExecute(&host_, "CREATE TABLE u (v INT, tag VARCHAR(4))");
    MustExecute(&host_, "INSERT INTO u VALUES (10, 'x'), (NULL, 'n'), "
                        "(7, 'y'), (7, 'z')");
    MustExecute(remote_.engine.get(),
                "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
    MustExecute(remote_.engine.get(),
                "INSERT INTO r VALUES (1, 100), (3, 300), (5, 500), "
                "(7, 700), (110, 110), (9, 900)");
  }

  Engine host_;
  RemoteServer remote_;
};

TEST_F(BatchExecTest, SemanticsCorpusIsBatchSizeInvariant) {
  const char* kCorpus[] = {
      "SELECT id FROM t WHERE v = NULL",
      "SELECT id FROM t WHERE v <> 10",
      "SELECT id FROM t WHERE v IS NULL ORDER BY id",
      "SELECT id FROM t WHERE v IS NOT NULL AND s IS NULL",
      "SELECT id FROM t WHERE v > 5 OR s = 'abc' ORDER BY id",
      "SELECT id FROM t WHERE NOT (v > 5) ORDER BY id",
      "SELECT id FROM t WHERE v > 5 AND id < 100 AND s <> 'abc'",
      "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
      "SELECT COUNT(*), SUM(v), MIN(v) FROM t WHERE id > 1000",
      "SELECT v, COUNT(*) FROM t WHERE id > 100 GROUP BY v",
      "SELECT COUNT(v), COUNT(DISTINCT v), SUM(DISTINCT v) FROM t",
      "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v",
      "SELECT t.id, u.tag FROM t JOIN u ON t.v = u.v",
      "SELECT t.id, u.tag FROM t LEFT JOIN u ON t.v = u.v ORDER BY t.id",
      "SELECT id FROM t WHERE s LIKE 'ab%' ORDER BY id",
      "SELECT id, v + 1 FROM t WHERE id = 2",
      "SELECT TOP 3 id FROM t ORDER BY id",
      "SELECT TOP 100 id FROM t ORDER BY id DESC",
      "SELECT id FROM t WHERE v IN (10, NULL)",
      "SELECT id FROM t WHERE v NOT IN (10, NULL)",
      "SELECT UPPER(s), LEN(s) FROM t WHERE id = 1",
      "SELECT id FROM t ORDER BY v DESC, id",
      "SELECT t.id, r.e FROM t, rsrv.db.dbo.r r WHERE t.id = r.a",
      "SELECT t.id, r.e FROM t, rsrv.db.dbo.r r "
      "WHERE t.id = r.a AND r.e > 150 ORDER BY t.id",
      "SELECT 1 / 0",  // Errors must be batch-size-invariant too.
  };
  for (const char* sql : kCorpus) {
    Observation base = Observe(&host_, sql, /*batch_rows=*/0);
    EXPECT_EQ(base.exec_batches, 0) << sql;  // Row mode never counts batches.
    for (int bs : kBatchSizes) {
      if (bs == 0) continue;
      Observation obs = Observe(&host_, sql, bs);
      ExpectEquivalent(base, obs, sql, bs);
      if (obs.ok && obs.rows_output > 0) {
        // The sink pulled real batches and they add up to the output.
        EXPECT_GT(obs.exec_batches, 0) << sql;
        EXPECT_EQ(obs.exec_batch_rows, obs.rows_output) << sql;
      }
    }
  }
}

// Subqueries drive Restart() on the inner side while the outer side streams
// in batches — the Restart-mid-batch interleaving. The correlated variant
// parameterizes a remote query that rebinds per outer row.
TEST_F(BatchExecTest, SubqueryRestartMidBatchIsBatchSizeInvariant) {
  const char* kSubqueries[] = {
      "SELECT id FROM t WHERE EXISTS (SELECT * FROM u WHERE u.v = t.v)",
      "SELECT id FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.v = t.v)",
      "SELECT id FROM t WHERE id IN (SELECT a FROM rsrv.db.dbo.r)",
      "SELECT id FROM t WHERE id NOT IN (SELECT a FROM rsrv.db.dbo.r)",
      "SELECT id FROM t WHERE EXISTS "
      "(SELECT * FROM rsrv.db.dbo.r WHERE r.a = t.id AND r.e > 200)",
  };
  for (const char* sql : kSubqueries) {
    Observation base = Observe(&host_, sql, /*batch_rows=*/0);
    for (int bs : kBatchSizes) {
      if (bs == 0) continue;
      Observation obs = Observe(&host_, sql, bs);
      // Semi-join early termination can legitimately pull a different
      // number of remote rows per mode; the answer may not change.
      ExpectEquivalent(base, obs, sql, bs, /*compare_remote_rows=*/false);
    }
  }
}

// exec.batches / exec.batch_rows are queryable through sys..dm_metrics.
TEST_F(BatchExecTest, BatchCountersVisibleInMetricsDmv) {
  host_.options()->execution.exec_batch_rows = 1024;
  MustExecute(&host_, "SELECT id FROM t WHERE v IS NOT NULL");
  QueryResult m = MustExecute(
      &host_,
      "SELECT name, value FROM sys..dm_metrics WHERE name = 'exec.batches'");
  ASSERT_NE(m.rowset, nullptr);
  ASSERT_EQ(m.rowset->rows().size(), 1u);
  EXPECT_GT(m.rowset->rows()[0][1].int64_value(), 0);
  m = MustExecute(&host_,
                  "SELECT name, value FROM sys..dm_metrics "
                  "WHERE name = 'exec.batch_rows'");
  ASSERT_EQ(m.rowset->rows().size(), 1u);
  EXPECT_GT(m.rowset->rows()[0][1].int64_value(), 0);
}

// ---------------------------------------------------------------------------
// Random distributed queries, all batch sizes.
// ---------------------------------------------------------------------------

class BatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferentialTest, RandomQueriesAgreeAcrossBatchSizes) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "rsrv");
  Rng data_rng(GetParam() * 6271 + 17);

  MustExecute(&host, "CREATE TABLE t1 (a INT PRIMARY KEY, b INT, c INT)");
  MustExecute(&host, "CREATE TABLE t2 (a INT PRIMARY KEY, d INT)");
  MustExecute(remote.engine.get(),
              "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
  auto fill = [&](Engine* engine, const std::string& table, int rows,
                  int cols) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    std::set<int64_t> used;
    for (int i = 0; i < rows; ++i) {
      int64_t key;
      do {
        key = data_rng.Uniform(0, 150);
      } while (!used.insert(key).second);
      if (i) sql += ",";
      sql += "(" + std::to_string(key);
      for (int c = 1; c < cols; ++c) {
        sql += "," + std::to_string(data_rng.Uniform(-5, 40));
      }
      sql += ")";
    }
    MustExecute(engine, sql);
  };
  fill(&host, "t1", 60, 3);
  fill(&host, "t2", 40, 2);
  fill(remote.engine.get(), "r", 80, 2);

  // Same generator shape (and seed behavior) as before the harness
  // extraction: two local tables and one remote, joined on `a`.
  DifferentialQueryGenerator generator(
      GetParam(), {{"t1", "t1"}, {"t2", "t2"}, {"rsrv.db.dbo.r", "r"}});
  for (int q = 0; q < 20; ++q) {
    std::string sql = generator.Next();
    Observation base = Observe(&host, sql, /*batch_rows=*/0);
    for (int bs : kBatchSizes) {
      if (bs == 0) continue;
      Observation obs = Observe(&host, sql, bs);
      ExpectEquivalent(base, obs, sql, bs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Seeded fault schedules: the outcome (success fingerprint or error code)
// must not depend on the local batch size, because remote block-fetch
// granularity — and with it the wire-message ordinals the injector scripts
// against — stays clamped to remote_batch_rows in every mode.
// ---------------------------------------------------------------------------

TEST(BatchExecFaultTest, FaultScheduleOutcomesAreBatchSizeInvariant) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "rsrv");
  MustExecute(remote.engine.get(),
              "CREATE TABLE r (a INT PRIMARY KEY, e INT)");
  std::string insert = "INSERT INTO r VALUES ";
  for (int i = 0; i < 600; ++i) {
    if (i) insert += ",";
    insert += "(" + std::to_string(i) + "," + std::to_string(i % 23) + ")";
  }
  MustExecute(remote.engine.get(), insert);

  const std::string sql =
      "SELECT e, COUNT(*) FROM rsrv.db.dbo.r WHERE a < 500 GROUP BY e";
  // Warm the plan cache with the injector inert so compile-time traffic
  // (schema/statistics fetches) does not consume scripted ordinals.
  MustExecute(&host, sql);

  for (uint64_t schedule = 0; schedule < 6; ++schedule) {
    const uint64_t seed = ChaosSeed(/*suite_tag=*/0xBA7C4, schedule);
    Rng rng(seed);
    const int64_t after = rng.Uniform(0, 6);
    const int64_t count = rng.Uniform(1, 4);
    const bool down = rng.Uniform(0, 3) == 0;

    Observation base;
    bool first = true;
    for (int bs : kBatchSizes) {
      remote.injector->Reset(seed);
      if (down) {
        remote.injector->LinkDownAfter(after);
      } else {
        remote.injector->FailMessages(after, count);
      }
      Observation obs = Observe(&host, sql, bs);
      remote.injector->Reset();
      if (first) {
        base = obs;
        first = false;
        continue;
      }
      ExpectEquivalent(base, obs, sql + " [schedule " +
                                      std::to_string(schedule) + "]",
                       bs);
    }
  }
}

}  // namespace
}  // namespace dhqp
