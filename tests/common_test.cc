// Unit tests for the common layer: Status/Result, Value, dates.

#include <gtest/gtest.h>

#include "src/common/date.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace dhqp {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok_result = 42;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);

  Result<int> err_result = Status::InvalidArgument("bad");
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MacroPropagation) {
  auto inner = []() -> Result<int> { return Status::NotFound("x"); };
  auto outer = [&]() -> Result<int> {
    DHQP_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kNotFound);
}

TEST(ValueTest, NullOrderingAndEquality) {
  Value null = Value::Null();
  Value one = Value::Int64(1);
  EXPECT_TRUE(null < one);
  EXPECT_TRUE(null == Value::Null(DataType::kInt64));
  EXPECT_EQ(null.ToString(), "NULL");
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int64(3)), 0);
  // Large integers compare exactly (no double rounding).
  int64_t big = (1ll << 62) + 1;
  EXPECT_GT(Value::Int64(big).Compare(Value::Int64(big - 1)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(Value::String("123").CastTo(DataType::kInt64)->int64_value(), 123);
  EXPECT_EQ(Value::Int64(1).CastTo(DataType::kBool)->bool_value(), true);
  EXPECT_EQ(Value::String("2001-02-03").CastTo(DataType::kDate)->date_value(),
            CivilToDays(2001, 2, 3));
  EXPECT_FALSE(Value::String("nope").CastTo(DataType::kInt64).ok());
  // NULL casts stay NULL with the target type.
  Value v = *Value::Null().CastTo(DataType::kDouble);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kDouble);
}

TEST(DateTest, RoundTripKnownDates) {
  EXPECT_EQ(CivilToDays(1970, 1, 1), 0);
  EXPECT_EQ(CivilToDays(1970, 1, 2), 1);
  EXPECT_EQ(CivilToDays(1969, 12, 31), -1);
  EXPECT_EQ(DaysToIsoDate(CivilToDays(2004, 11, 15)), "2004-11-15");
  EXPECT_EQ(*ParseIsoDate("1992-02-29"), CivilToDays(1992, 2, 29));
  EXPECT_FALSE(ParseIsoDate("not-a-date").ok());
  EXPECT_FALSE(ParseIsoDate("1992-13-01").ok());
}

// Property: DaysToCivil inverts CivilToDays across a wide range.
TEST(DateTest, RoundTripProperty) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    int64_t days = rng.Uniform(-200000, 200000);
    int y, m, d;
    DaysToCivil(days, &y, &m, &d);
    EXPECT_EQ(CivilToDays(y, m, d), days);
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 31);
  }
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    int64_t x = a.Uniform(5, 10);
    EXPECT_EQ(x, b.Uniform(5, 10));
    EXPECT_GE(x, 5);
    EXPECT_LE(x, 10);
  }
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 1.1, 77);
  int64_t low = 0, total = 20000;
  for (int64_t i = 0; i < total; ++i) {
    if (zipf.Next() <= 10) ++low;
  }
  // With theta=1.1 the top-10 ranks dominate.
  EXPECT_GT(low, total / 4);
}

}  // namespace
}  // namespace dhqp
