// Interval-set algebra tests — the foundation of the constraint property
// framework (§4.1.5), including the paper's worked examples.

#include <gtest/gtest.h>

#include "src/common/interval.h"
#include "src/common/rng.h"

namespace dhqp {
namespace {

Value V(int64_t x) { return Value::Int64(x); }

TEST(IntervalSetTest, PaperFilterExample) {
  // "CustomerId > 50" narrows [-inf,+inf] to (50,+inf].
  IntervalSet domain = IntervalSet::All();
  domain = domain.Intersect(IntervalSet::FromComparison(">", V(50)));
  EXPECT_FALSE(domain.Contains(V(50)));
  EXPECT_TRUE(domain.Contains(V(51)));
  EXPECT_EQ(domain.ToString(), "(50, +inf)");
}

TEST(IntervalSetTest, PaperDisjointExample) {
  // "CustomerId IN (1, 5) OR CustomerId BETWEEN 50 AND 100" derives
  // [1,1] U [5,5] U [50,100].
  IntervalSet in_list = IntervalSet::Point(V(1)).Union(IntervalSet::Point(V(5)));
  IntervalSet between = IntervalSet::Range(Bound{V(50), true}, Bound{V(100), true});
  IntervalSet domain = in_list.Union(between);
  EXPECT_EQ(domain.ToString(), "[1, 1] U [5, 5] U [50, 100]");
  EXPECT_TRUE(domain.Contains(V(5)));
  EXPECT_FALSE(domain.Contains(V(6)));
  EXPECT_TRUE(domain.Contains(V(77)));
}

TEST(IntervalSetTest, PaperPruningExample) {
  // Domain (50,+inf] intersected with [20,20] is empty -> constant false.
  IntervalSet domain = IntervalSet::FromComparison(">", V(50));
  IntervalSet probe = IntervalSet::Point(V(20));
  EXPECT_FALSE(domain.Intersects(probe));
  EXPECT_TRUE(domain.Intersect(probe).IsEmpty());
}

TEST(IntervalSetTest, NotEquals) {
  IntervalSet ne = IntervalSet::FromComparison("<>", V(3));
  EXPECT_FALSE(ne.Contains(V(3)));
  EXPECT_TRUE(ne.Contains(V(2)));
  EXPECT_TRUE(ne.Contains(V(4)));
  // Complement of a point does not merge back into "all".
  EXPECT_FALSE(ne.IsAll());
}

TEST(IntervalSetTest, MergeAdjacentOnUnion) {
  IntervalSet a = IntervalSet::Range(Bound{V(1), true}, Bound{V(5), true});
  IntervalSet b = IntervalSet::Range(Bound{V(5), true}, Bound{V(9), true});
  EXPECT_EQ(a.Union(b).intervals().size(), 1u);
  // Touching at an excluded endpoint stays split.
  IntervalSet c = IntervalSet::Range(Bound{V(1), true}, Bound{V(5), false});
  IntervalSet d = IntervalSet::Range(Bound{V(5), false}, Bound{V(9), true});
  EXPECT_EQ(c.Union(d).intervals().size(), 2u);
  EXPECT_FALSE(c.Union(d).Contains(V(5)));
}

TEST(IntervalSetTest, EmptyIntervalRejected) {
  EXPECT_TRUE(IntervalSet::Range(Bound{V(5), false}, Bound{V(5), false})
                  .IsEmpty());
  EXPECT_TRUE(IntervalSet::Range(Bound{V(7), true}, Bound{V(3), true})
                  .IsEmpty());
  EXPECT_FALSE(IntervalSet::Point(V(5)).IsEmpty());
}

TEST(IntervalSetTest, StringsAndDates) {
  IntervalSet names = IntervalSet::Range(Bound{Value::String("b"), true},
                                         Bound{Value::String("f"), false});
  EXPECT_TRUE(names.Contains(Value::String("cat")));
  EXPECT_FALSE(names.Contains(Value::String("f")));
  EXPECT_FALSE(names.Contains(Value::String("apple")));
}

// Property test: set semantics of Intersect/Union/Contains agree with brute
// force over randomly generated interval sets.
class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalPropertyTest, IntersectUnionAgreeWithMembership) {
  Rng rng(GetParam());
  auto random_set = [&]() {
    IntervalSet set = IntervalSet::None();
    int n = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      int64_t a = rng.Uniform(0, 40);
      int64_t b = rng.Uniform(0, 40);
      if (a > b) std::swap(a, b);
      set = set.Union(IntervalSet::Range(Bound{V(a), rng.Uniform(0, 1) == 0},
                                         Bound{V(b), rng.Uniform(0, 1) == 0}));
    }
    return set;
  };
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet x = random_set();
    IntervalSet y = random_set();
    IntervalSet inter = x.Intersect(y);
    IntervalSet uni = x.Union(y);
    for (int64_t v = -1; v <= 41; ++v) {
      bool in_x = x.Contains(V(v));
      bool in_y = y.Contains(V(v));
      EXPECT_EQ(inter.Contains(V(v)), in_x && in_y) << "v=" << v;
      EXPECT_EQ(uni.Contains(V(v)), in_x || in_y) << "v=" << v;
    }
    // Normalization: intervals disjoint and sorted.
    const auto& ivs = inter.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_TRUE(ivs[i - 1].hi.value && ivs[i].lo.value);
      EXPECT_LE(ivs[i - 1].hi.value->Compare(*ivs[i].lo.value), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dhqp
