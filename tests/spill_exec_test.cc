// Workload-governor coverage: memory-grant admission control and
// spill-to-disk execution. The differential suites run one corpus across
// memory budgets in {unlimited, tight, minimum-grant} x dop in {1, 4} and
// must produce identical result multisets — with the unlimited serial run
// as the baseline — while the budgeted runs provably spill (exec.spills,
// spill= in EXPLAIN ANALYZE, SPILL_IO waits). The governor suites pin the
// admission semantics: granted memory never exceeds the budget under
// concurrent over-budget submission, queued statements surface in
// dm_exec_query_memory_grants with RESOURCE_SEMAPHORE waits and the
// kQueued request phase, the grant-timeout path degrades to the minimum
// grant instead of starving, the kill switch admits queued statements
// unlimited, and seeded link faults mid-spill never leak a grant.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/waits.h"
#include "src/core/governor.h"
#include "src/executor/profile.h"
#include "src/sysview/requests.h"
#include "tests/differential_harness.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

constexpr int kSemIdx = static_cast<int>(waits::WaitType::kResourceSemaphore);
constexpr int kSpillIdx = static_cast<int>(waits::WaitType::kSpillIo);

int64_t ColI(const Schema& schema, const Row& row, const char* name) {
  int ord = schema.FindColumn(name);
  EXPECT_GE(ord, 0) << "column " << name;
  return row[static_cast<size_t>(ord)].int64_value();
}

std::string ColS(const Schema& schema, const Row& row, const char* name) {
  int ord = schema.FindColumn(name);
  EXPECT_GE(ord, 0) << "column " << name;
  return row[static_cast<size_t>(ord)].string_value();
}

/// One memory-budget regime for the differential cross. `per_query` drives
/// the grant each statement runs under; the server budget stays large so
/// single-statement suites never queue — admission waiting is covered by
/// the dedicated governor tests below.
struct BudgetMode {
  const char* label;
  int64_t budget;     ///< EngineOptions::max_server_memory_bytes.
  int64_t per_query;  ///< EngineOptions::max_grant_per_query_bytes.
};

const BudgetMode kUnlimited = {"unlimited", 0, 0};
const BudgetMode kBudgets[] = {
    // Tight: a 256 KiB grant against ~800 KiB working sets — every
    // buffering operator overflows once.
    {"tight", 256 << 20, 256 << 10},
    // Minimum: the grant equals the 64 KiB floor a timed-out statement
    // degrades to — deep Grace recursion and many sort runs.
    {"minimum-grant", 256 << 20, 64 << 10},
};

void ApplyBudget(Engine* engine, const BudgetMode& mode) {
  engine->options()->max_server_memory_bytes = mode.budget;
  engine->options()->max_grant_per_query_bytes = mode.per_query;
}

const ExecMode kModes[] = {{1, 0}, {1, 1024}, {4, 0}, {4, 1024}};

constexpr int kBig1Rows = 8000;
constexpr int kBig2Rows = 6000;

// Bulk-loads `rows` synthetic rows in 1000-tuple INSERT statements.
void Fill(Engine* engine, const std::string& table, int rows, int cols) {
  for (int base = 0; base < rows; base += 1000) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    int end = std::min(base + 1000, rows);
    for (int i = base; i < end; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i);
      if (cols >= 2) sql += "," + std::to_string(i % 97);
      if (cols >= 3) sql += "," + std::to_string((i * 31) % 1009);
      sql += ")";
    }
    MustExecute(engine, sql);
  }
}

class SpillExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&host_,
                "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
    MustExecute(&host_, "CREATE TABLE big2 (a INT PRIMARY KEY, d INT)");
    MustExecute(&host_,
                "CREATE TABLE big3 (a INT PRIMARY KEY, b INT, c INT)");
    Fill(&host_, "big1", kBig1Rows, 3);
    Fill(&host_, "big2", kBig2Rows, 2);
    Fill(&host_, "big3", 4000, 3);
  }

  /// Process-wide SPILL_IO event count, via the host's own wait-stats DMV.
  int64_t SpillIoWaits() {
    QueryResult r = MustExecute(
        &host_, "SELECT wait_type, waiting_tasks_count "
                "FROM sys..dm_os_wait_stats");
    for (const Row& row : r.rowset->rows()) {
      if (ColS(r.rowset->schema(), row, "wait_type") == "SPILL_IO") {
        return ColI(r.rowset->schema(), row, "waiting_tasks_count");
      }
    }
    return 0;
  }

  Engine host_;
};

// Every operator that buffers. Join, sort, and grouping keys are mostly
// NON-indexed columns on purpose: keys covered by the primary-key index
// give the optimizer order for free (merge join, stream aggregate — no
// memory, nothing to spill), so the spilling plans need hash joins, hash
// aggregates, and real sorts. A couple of indexed-key queries stay in the
// corpus as merge-plan controls.
const char* kCorpus[] = {
    // Hash aggregate, 1009 unordered groups.
    "SELECT c, COUNT(*), SUM(b) FROM big1 GROUP BY c",
    // Hash aggregate, 8000 composite groups.
    "SELECT b, c, COUNT(*) FROM big1 GROUP BY b, c",
    // Full-input sort on unindexed keys.
    "SELECT a, b FROM big1 ORDER BY c, a",
    "SELECT TOP 50 a, c FROM big1 WHERE c > 500 ORDER BY c, a",
    // Hash join on unindexed keys: the build side outgrows a tight grant.
    "SELECT big1.a, big1.c, big2.d FROM big1 JOIN big2 ON big1.b = big2.d "
    "WHERE big1.a < 4000",
    // Hash join feeding a hash aggregate.
    "SELECT big1.c, COUNT(*), SUM(big2.d) FROM big1 JOIN big2 "
    "ON big1.c = big2.d GROUP BY big1.c",
    // Left-outer probe: null-extended rows must survive spilled probes.
    "SELECT big1.a, big2.d FROM big1 LEFT JOIN big2 ON big1.b = big2.d "
    "WHERE big1.a < 200",
    // Indexed-key merge join: the no-buffering control stays correct.
    "SELECT big1.a, big1.c, big2.d FROM big1 JOIN big2 ON big1.a = big2.a "
    "WHERE big1.b < 40",
    // DISTINCT accumulators under grouping.
    "SELECT big1.b, COUNT(DISTINCT big2.d) FROM big1 JOIN big2 "
    "ON big1.c = big2.d GROUP BY big1.b",
    // Correlated EXISTS on an unindexed column (spooled inner side).
    "SELECT a FROM big1 WHERE b = 5 AND EXISTS "
    "(SELECT * FROM big2 WHERE big2.d = big1.c)",
};

TEST_F(SpillExecTest, CorpusIsBudgetInvariant) {
  // Baseline: unlimited memory, serial, row-at-a-time — the exact pre-PR
  // executor.
  std::vector<Observation> baseline;
  ApplyBudget(&host_, kUnlimited);
  for (const char* sql : kCorpus) {
    baseline.push_back(Observe(&host_, sql, ExecMode{1, 0}));
    EXPECT_TRUE(baseline.back().ok) << sql;
  }

  for (const BudgetMode& bm : kBudgets) {
    ApplyBudget(&host_, bm);
    for (size_t q = 0; q < std::size(kCorpus); ++q) {
      for (const ExecMode& mode : kModes) {
        const std::string label = std::string(bm.label) + " " + mode.Label();
        Observation obs = Observe(&host_, kCorpus[q], mode);
        ExpectEquivalent(baseline[q], obs, kCorpus[q], label);
        ExpectWaitsSane(obs, kCorpus[q], label);
      }
    }

    // The budget run was not vacuous: re-drive the corpus serially and
    // demand real spill activity under this regime.
    host_.options()->execution.dop = 1;
    host_.options()->execution.exec_batch_rows = 0;
    int64_t spills = 0;
    int64_t spill_bytes = 0;
    int64_t spill_waits = 0;
    for (const char* sql : kCorpus) {
      QueryResult r = MustExecute(&host_, sql);
      spills += r.exec_stats.spills;
      spill_bytes += r.exec_stats.spill_bytes;
      spill_waits += r.wait_totals.count[kSpillIdx];
    }
    EXPECT_GT(spills, 0) << bm.label << ": corpus never spilled";
    EXPECT_GT(spill_bytes, 0) << bm.label;
    EXPECT_GT(spill_waits, 0) << bm.label << ": no SPILL_IO waits charged";
  }

  // The governor held nothing back once the statements finished.
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);
}

TEST_F(SpillExecTest, GeneratedQueriesAgreeAcrossBudgets) {
  // Three pool entries minimum: the generator draws up to three distinct
  // FROM sources and re-rolls duplicates.
  std::vector<QuerySource> pool = {
      {"big1", "big1"}, {"big2", "big2"}, {"big3", "big3"}};
  for (uint64_t seed : {11u, 23u, 47u}) {
    DifferentialQueryGenerator gen(seed, pool, /*max_const=*/6000);
    for (int i = 0; i < 8; ++i) {
      const std::string sql = gen.Next();
      ApplyBudget(&host_, kUnlimited);
      Observation base = Observe(&host_, sql, ExecMode{1, 0});
      for (const BudgetMode& bm : kBudgets) {
        ApplyBudget(&host_, bm);
        for (int dop : {1, 4}) {
          const std::string label =
              std::string(bm.label) + " dop=" + std::to_string(dop);
          Observation obs = Observe(&host_, sql, ExecMode{dop, 0});
          ExpectEquivalent(base, obs, sql, label);
          ExpectWaitsSane(obs, sql, label);
        }
      }
    }
  }
}

// A forced spill is observable on every surface the ISSUE names: the
// query's ExecStats, the rendered profile and EXPLAIN ANALYZE (spill=),
// dm_exec_operator_stats spill columns, the exec.spills process metric,
// and SPILL_IO rows in dm_os_wait_stats.
TEST_F(SpillExecTest, ForcedSpillIsObservableEverywhere) {
  ApplyBudget(&host_, kBudgets[0]);  // tight
  // Unindexed join keys + unindexed sort: a hash-join build side and a
  // wide sort, both past the 256 KiB grant.
  const char* sql =
      "SELECT big1.c, big2.d FROM big1 JOIN big2 ON big1.b = big2.d "
      "ORDER BY big1.c, big1.a";

  QueryResult r = MustExecute(&host_, sql);
  EXPECT_GT(static_cast<int64_t>(r.exec_stats.spills), 0);
  EXPECT_GT(static_cast<int64_t>(r.exec_stats.spill_bytes), 0);
  EXPECT_GT(r.wait_totals.count[kSpillIdx], 0);
  ASSERT_NE(r.profile, nullptr);
  EXPECT_NE(RenderOperatorProfile(*r.profile).find("spill="),
            std::string::npos);

  QueryResult analyzed =
      MustExecute(&host_, std::string("EXPLAIN ANALYZE ") + sql);
  std::string plan_text;
  for (const Row& row : analyzed.rowset->rows()) {
    plan_text += row[0].string_value() + "\n";
  }
  EXPECT_NE(plan_text.find("spill="), std::string::npos) << plan_text;

  QueryResult ops = MustExecute(
      &host_,
      "SELECT operator, spills, spill_bytes FROM sys..dm_exec_operator_stats");
  int64_t dmv_spills = 0;
  for (const Row& row : ops.rowset->rows()) {
    dmv_spills += ColI(ops.rowset->schema(), row, "spills");
  }
  EXPECT_GT(dmv_spills, 0);

  QueryResult metrics = MustExecute(
      &host_, "SELECT name, value FROM sys..dm_metrics");
  int64_t exec_spills = -1;
  for (const Row& row : metrics.rowset->rows()) {
    if (ColS(metrics.rowset->schema(), row, "name") == "exec.spills") {
      exec_spills = ColI(metrics.rowset->schema(), row, "value");
    }
  }
  EXPECT_GT(exec_spills, 0) << "exec.spills metric missing or zero";

  EXPECT_GT(SpillIoWaits(), 0);
}

// External merge must reproduce the in-memory stable sort bit-for-bit:
// ORDER BY a 97-valued key leaves ~82-way ties whose within-key order is
// the insertion order, across however many spilled runs the minimum grant
// forces.
TEST_F(SpillExecTest, SortSpillIsStableAndOrdered) {
  const char* sql = "SELECT b, a FROM big1 ORDER BY b";
  ApplyBudget(&host_, kUnlimited);
  host_.options()->execution.dop = 1;
  QueryResult in_memory = MustExecute(&host_, sql);
  EXPECT_EQ(static_cast<int64_t>(in_memory.exec_stats.spills), 0);

  ApplyBudget(&host_, kBudgets[1]);  // minimum-grant
  QueryResult spilled = MustExecute(&host_, sql);
  EXPECT_GT(static_cast<int64_t>(spilled.exec_stats.spills), 0);
  EXPECT_EQ(RowsToString(in_memory), RowsToString(spilled));
}

// Seeded chaos: a linked member dies at a scripted message ordinal while
// the coordinator is building (and spilling) a hash join from its stream.
// Whatever the failure point, the statement's memory grant and memory
// charges must be fully released — the resource semaphore can never leak
// budget on an error path.
TEST_F(SpillExecTest, GrantsReleasedAfterLinkFaultsMidSpill) {
  RemoteServer remote = AttachRemoteEngine(&host_, "rsrv");
  MustExecute(remote.engine.get(),
              "CREATE TABLE big (a INT PRIMARY KEY, b INT)");
  Fill(remote.engine.get(), "big", kBig1Rows, 2);
  ApplyBudget(&host_, kBudgets[1]);  // minimum-grant: spills start early

  const std::string sql =
      "SELECT big1.a, big1.c FROM big1 JOIN rsrv.d.s.big "
      "ON big1.a = rsrv.d.s.big.a ORDER BY big1.c, big1.a";
  const int64_t spill_waits_before = SpillIoWaits();

  const int64_t kFaultAfter[] = {0, 2, 4, 7, 11, 16};
  int failures = 0;
  for (size_t i = 0; i < std::size(kFaultAfter); ++i) {
    remote.injector->Reset(ChaosSeed(/*suite_tag=*/0x5b111, i));
    remote.injector->LinkDownAfter(kFaultAfter[i]);
    auto result = host_.Execute(sql);
    if (!result.ok()) ++failures;

    // The grant died with the statement, on success and failure alike.
    EXPECT_EQ(governor::Governor::Global().active_grants(), 0)
        << "fault after " << kFaultAfter[i];
    EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0)
        << "fault after " << kFaultAfter[i];
    EXPECT_EQ(governor::Governor::Global().queued_statements(), 0);
    for (const auto& state : sysview::RequestRegistry::Global().Snapshot()) {
      EXPECT_EQ(state->memory.current(), 0) << state->engine;
      EXPECT_EQ(state->granted_bytes.load(std::memory_order_relaxed), 0);
    }
  }
  EXPECT_GT(failures, 0) << "no scripted fault ever fired";
  // The chaos loop progressed far enough to spill before (some) faults.
  EXPECT_GT(SpillIoWaits(), spill_waits_before);

  // The link heals; the same statement runs to completion and its answer
  // matches an unlimited-memory run.
  remote.injector->Reset(0);
  QueryResult healed = MustExecute(&host_, sql);
  ApplyBudget(&host_, kUnlimited);
  QueryResult unlimited = MustExecute(&host_, sql);
  EXPECT_EQ(Fingerprint(healed), Fingerprint(unlimited));
}

EngineOptions WorkerOptions(int64_t budget) {
  EngineOptions options;
  options.name = "worker";
  options.max_server_memory_bytes = budget;
  return options;
}

// Concurrent over-budget submission from many engines sharing the process
// governor: at no observable instant does granted memory exceed the server
// budget (checked both from Governor::Snapshot and through the
// dm_exec_query_memory_grants DMV), queueing is visible, every statement
// eventually completes with the right answer (the queue drains — no
// deadlock, no starvation), and the semaphore ends empty.
TEST(GovernorConcurrencyTest, GrantedNeverExceedsBudgetAndQueueDrains) {
  constexpr int kWorkers = 6;
  constexpr int kQueriesPerWorker = 2;
  constexpr int64_t kBudget = 400 << 10;
  // ORDER BY an unindexed column: a real Sort node whose ~300 KiB input
  // overflows the 128 KiB per-query grant.
  const char* kSql = "SELECT a, b FROM t ORDER BY b, a";

  std::vector<std::unique_ptr<Engine>> engines;
  for (int i = 0; i < kWorkers; ++i) {
    auto engine = std::make_unique<Engine>(WorkerOptions(kBudget));
    engine->options()->max_grant_per_query_bytes = 128 << 10;
    engine->options()->max_concurrent_grants = 2;
    engine->options()->grant_timeout_ms = 10000;
    MustExecute(engine.get(), "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
    Fill(engine.get(), "t", 4000, 2);
    engines.push_back(std::move(engine));
  }
  // All workers hold identical data; one unlimited run fixes the answer.
  engines[0]->options()->max_server_memory_bytes = 0;
  const std::string expected = Fingerprint(MustExecute(engines[0].get(), kSql));
  engines[0]->options()->max_server_memory_bytes = kBudget;

  // The monitor engine shares the workers' name so the grants DMV (which
  // scopes to the serving engine's name) sees their grants; its own DMV
  // scans bypass admission and exclude themselves.
  Engine monitor(WorkerOptions(0));

  std::atomic<bool> done{false};
  std::atomic<int> budget_violations{0};
  std::atomic<bool> saw_queued{false};
  std::atomic<bool> saw_queued_dmv{false};
  std::atomic<int64_t> sem_waits{0};
  std::atomic<int64_t> spills{0};
  std::atomic<int> wrong_answers{0};
  std::atomic<int> errors{0};

  std::thread watcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      int64_t granted = 0;
      for (const governor::GrantRow& row :
           governor::Governor::Global().Snapshot()) {
        granted += row.granted_bytes;
        if (row.is_queued) saw_queued.store(true, std::memory_order_relaxed);
      }
      if (granted > kBudget) {
        budget_violations.fetch_add(1, std::memory_order_relaxed);
      }
      QueryResult g = MustExecute(
          &monitor, "SELECT * FROM sys..dm_exec_query_memory_grants");
      int64_t dmv_granted = 0;
      for (const Row& row : g.rowset->rows()) {
        dmv_granted += ColI(g.rowset->schema(), row, "granted_bytes");
        if (ColI(g.rowset->schema(), row, "is_queued") != 0) {
          saw_queued_dmv.store(true, std::memory_order_relaxed);
        }
      }
      if (dmv_granted > kBudget) {
        budget_violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::thread> workers;
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&, i] {
      for (int q = 0; q < kQueriesPerWorker; ++q) {
        auto result = engines[static_cast<size_t>(i)]->Execute(kSql);
        if (!result.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (Fingerprint(*result) != expected) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
        sem_waits.fetch_add(result->wait_totals.count[kSemIdx],
                            std::memory_order_relaxed);
        spills.fetch_add(result->exec_stats.spills,
                         std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_relaxed);
  watcher.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(wrong_answers.load(), 0);
  EXPECT_EQ(budget_violations.load(), 0)
      << "granted memory exceeded the server budget";
  EXPECT_TRUE(saw_queued.load() || saw_queued_dmv.load())
      << "no statement was ever observed queued";
  EXPECT_GT(sem_waits.load(), 0) << "no RESOURCE_SEMAPHORE wait recorded";
  EXPECT_GT(spills.load(), 0) << "128 KiB grants never forced a spill";

  // Drained: nothing held, nothing waiting.
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);
  EXPECT_EQ(governor::Governor::Global().queued_statements(), 0);
}

// Deterministic queue/timeout coverage: the test holds the entire budget
// through a direct grant, so the worker statement must queue (visible as
// is_queued in the DMV, the kQueued request phase, and — after
// grant_timeout_ms — the degraded flag). Releasing the held grant admits
// it at the degraded minimum grant; it spills, completes correctly, and
// charges a RESOURCE_SEMAPHORE wait. Timeout degrades; it never starves.
TEST(GovernorQueueTest, TimeoutDegradesToMinGrantAndCompletes) {
  constexpr int64_t kBudget = 256 << 10;
  Engine engine(WorkerOptions(kBudget));
  engine.options()->grant_timeout_ms = 100;
  MustExecute(&engine, "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
  Fill(&engine, "big1", kBig1Rows, 3);
  const char* kSql = "SELECT a, b FROM big1 ORDER BY c, a";

  engine.options()->max_server_memory_bytes = 0;
  const std::string expected = RowsToString(MustExecute(&engine, kSql));
  engine.options()->max_server_memory_bytes = kBudget;

  governor::GovernorOptions gopts;
  gopts.max_server_memory_bytes = kBudget;
  governor::MemoryGrant held = governor::Governor::Global().Acquire(
      gopts, /*estimate_bytes=*/64 << 20, "holder", "act-hold", "HOLD", 1);
  ASSERT_TRUE(held.active());
  ASSERT_EQ(held.granted_bytes(), kBudget);

  QueryResult result;
  std::thread worker([&] { result = MustExecute(&engine, kSql); });

  Engine monitor(WorkerOptions(0));
  bool saw_queued_dmv = false;
  bool saw_degraded = false;
  bool saw_phase_queued = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!(saw_queued_dmv && saw_degraded && saw_phase_queued)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "queued=" << saw_queued_dmv << " degraded=" << saw_degraded
        << " phase=" << saw_phase_queued;
    QueryResult g = MustExecute(
        &monitor, "SELECT * FROM sys..dm_exec_query_memory_grants");
    for (const Row& row : g.rowset->rows()) {
      if (ColS(g.rowset->schema(), row, "statement").find("ORDER BY") ==
          std::string::npos) {
        continue;
      }
      EXPECT_EQ(ColI(g.rowset->schema(), row, "granted_bytes"), 0);
      if (ColI(g.rowset->schema(), row, "is_queued") != 0) {
        saw_queued_dmv = true;
      }
      if (ColI(g.rowset->schema(), row, "degraded") != 0) saw_degraded = true;
    }
    for (const auto& state : sysview::RequestRegistry::Global().Snapshot()) {
      if (state->engine == "worker" &&
          state->Phase() == sysview::RequestPhase::kQueued) {
        saw_phase_queued = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  held.Release();
  worker.join();

  EXPECT_EQ(RowsToString(result), expected);
  EXPECT_GE(result.wait_totals.count[kSemIdx], 1);
  EXPECT_GT(static_cast<int64_t>(result.exec_stats.spills), 0)
      << "the degraded minimum grant did not force a spill";
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);

  // Process wait stats carry the queue time.
  QueryResult w = MustExecute(
      &monitor, "SELECT wait_type, waiting_tasks_count "
                "FROM sys..dm_os_wait_stats");
  int64_t sem_tasks = 0;
  for (const Row& row : w.rowset->rows()) {
    if (ColS(w.rowset->schema(), row, "wait_type") == "RESOURCE_SEMAPHORE") {
      sem_tasks = ColI(w.rowset->schema(), row, "waiting_tasks_count");
    }
  }
  EXPECT_GE(sem_tasks, 1);
}

// Kill switch: disabling the governor mid-queue admits the waiting
// statement with an unlimited grant (it runs without spilling), and
// re-enabling restores admission control.
TEST(GovernorQueueTest, KillSwitchAdmitsQueuedStatementsUnlimited) {
  constexpr int64_t kBudget = 256 << 10;
  Engine engine(WorkerOptions(kBudget));
  engine.options()->grant_timeout_ms = 60000;
  MustExecute(&engine, "CREATE TABLE big1 (a INT PRIMARY KEY, b INT, c INT)");
  Fill(&engine, "big1", kBig1Rows, 3);

  governor::GovernorOptions gopts;
  gopts.max_server_memory_bytes = kBudget;
  governor::MemoryGrant held = governor::Governor::Global().Acquire(
      gopts, /*estimate_bytes=*/64 << 20, "holder", "act-hold2", "HOLD", 1);
  ASSERT_TRUE(held.active());

  QueryResult result;
  std::thread worker(
      [&] { result = MustExecute(&engine, "SELECT a FROM big1 ORDER BY c"); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (governor::Governor::Global().queued_statements() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  governor::Governor::SetEnabled(false);
  worker.join();
  governor::Governor::SetEnabled(true);
  held.Release();

  EXPECT_EQ(static_cast<int64_t>(result.exec_stats.rows_output), kBig1Rows);
  // Admitted unlimited: no grant cap, so nothing spilled.
  EXPECT_EQ(static_cast<int64_t>(result.exec_stats.spills), 0);
  EXPECT_EQ(governor::Governor::Global().active_grants(), 0);
  EXPECT_EQ(governor::Governor::Global().total_granted_bytes(), 0);
}

}  // namespace
}  // namespace dhqp
