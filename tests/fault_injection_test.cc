// Fault-injection harness tests: the FaultInjector scripting surface,
// Link::SendMessage retry/timeout/backoff semantics and accounting
// invariants, LinkedRowset/PrefetchingRowset behavior under transient and
// permanent faults (including Restart/NextBatch interleavings), and
// end-to-end engine behavior — retry recovery with ExecStats counters,
// provider-attributed errors, session teardown on link-down, and the
// partitioned-view graceful-degradation knob.

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/executor/prefetch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

Schema OneIntSchema() {
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  return schema;
}

std::vector<Row> IntRows(int n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int64(i)});
  return rows;
}

/// Yields `fail_after` rows, then returns a NetworkError from Next().
class FlakyRowset : public Rowset {
 public:
  FlakyRowset(Schema schema, int fail_after)
      : schema_(std::move(schema)), fail_after_(fail_after) {}

  const Schema& schema() const override { return schema_; }

  Result<bool> Next(Row* out) override {
    if (served_ >= fail_after_) {
      return Status::NetworkError("link dropped mid-stream");
    }
    *out = {Value::Int64(served_++)};
    return true;
  }

 private:
  Schema schema_;
  int fail_after_;
  int served_ = 0;
};

// ---------------------------------------------------------------------------
// FaultInjector scripting.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, WindowScriptDecidesExactOrdinals) {
  net::FaultInjector injector;
  injector.FailMessages(/*after=*/2, /*count=*/2);
  injector.AddLatencySpike(/*after=*/5, /*count=*/1, /*extra_us=*/500);
  std::vector<net::FaultKind> kinds;
  for (int i = 0; i < 7; ++i) kinds.push_back(injector.OnMessage().kind);
  EXPECT_EQ(kinds[0], net::FaultKind::kNone);
  EXPECT_EQ(kinds[1], net::FaultKind::kNone);
  EXPECT_EQ(kinds[2], net::FaultKind::kTransient);
  EXPECT_EQ(kinds[3], net::FaultKind::kTransient);
  EXPECT_EQ(kinds[4], net::FaultKind::kNone);
  EXPECT_EQ(kinds[5], net::FaultKind::kLatency);
  EXPECT_EQ(kinds[6], net::FaultKind::kNone);
  EXPECT_EQ(injector.faults_injected(), 3);
  EXPECT_EQ(injector.messages_seen(), 7);
}

TEST(FaultInjectorTest, LinkDownWinsOverOtherWindows) {
  net::FaultInjector injector;
  injector.AddLatencySpike(/*after=*/0, /*count=*/100, /*extra_us=*/10);
  injector.LinkDownAfter(/*after=*/3);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kLatency);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kLatency);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kLatency);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kLinkDown);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kLinkDown);
}

TEST(FaultInjectorTest, SeededDropsReplayExactly) {
  auto decide = [](uint64_t seed) {
    net::FaultInjector injector(seed);
    injector.SetDropProbability(0.3);
    std::string pattern;
    for (int i = 0; i < 200; ++i) {
      pattern +=
          injector.OnMessage().kind == net::FaultKind::kTransient ? '1' : '0';
    }
    return pattern;
  };
  const std::string a = decide(42);
  EXPECT_EQ(a, decide(42));  // Same seed => same drop set.
  EXPECT_NE(a, decide(43));
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.3 over 200 draws fires.
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultInjectorTest, ResetRewindsOrdinalsAndClearsSchedule) {
  net::FaultInjector injector(7);
  injector.FailMessages(0, 5);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kTransient);
  injector.Reset();
  EXPECT_EQ(injector.faults_injected(), 0);
  EXPECT_EQ(injector.messages_seen(), 0);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kNone);
  // Re-scripting after Reset starts from ordinal 0 again.
  injector.Reset();
  injector.FailMessages(0, 1);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kTransient);
  EXPECT_EQ(injector.OnMessage().kind, net::FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Link::SendMessage retry/timeout semantics and accounting.
// ---------------------------------------------------------------------------

TEST(LinkRetryTest, NoInjectorFastPathMatchesChargeMessage) {
  net::Link link("r");
  ASSERT_OK(link.SendMessage(100));
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.messages, 1);
  EXPECT_EQ(stats.bytes, 100);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.faults, 0);
}

TEST(LinkRetryTest, TransientFaultAbsorbedByRetry) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.FailMessages(0, 1);
  ASSERT_OK(link.SendMessage(100));
  net::LinkStats stats = link.stats();
  // The failed attempt still charged a message: retries are visible traffic.
  EXPECT_EQ(stats.messages, 2);
  EXPECT_EQ(stats.bytes, 200);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.faults, 1);
  EXPECT_EQ(stats.timeouts, 0);
}

TEST(LinkRetryTest, ExhaustedRetriesSurfaceAttributedError) {
  net::Link link("remote_a");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.FailMessages(0, 100);
  Status st = link.SendMessage(50);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  // Provider-attributed: the message names the linked server and the
  // exhausted retry budget.
  EXPECT_NE(st.message().find("remote_a"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("3 attempts"), std::string::npos)
      << st.ToString();
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.messages, 3);  // Default policy: 3 attempts.
  EXPECT_EQ(stats.retries, 2);   // Attempts minus the first.
  EXPECT_EQ(stats.faults, 3);
}

TEST(LinkRetryTest, LinkDownFailsFastWithoutRetry) {
  net::Link link("remote_b");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.LinkDownAfter(0);
  Status st = link.SendMessage(50);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  EXPECT_NE(st.message().find("remote_b"), std::string::npos);
  EXPECT_NE(st.message().find("link down"), std::string::npos);
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.messages, 1);  // No point retrying a dead link.
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.faults, 1);
}

TEST(LinkRetryTest, LatencySpikePastDeadlineTimesOutThenRecovers) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  net::RetryPolicy policy;
  policy.deadline_us = 200;
  link.set_retry_policy(policy);
  injector.AddLatencySpike(/*after=*/0, /*count=*/1, /*extra_us=*/500);
  ASSERT_OK(link.SendMessage(10));  // Timeout on attempt 1, clean attempt 2.
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.messages, 2);
  EXPECT_EQ(stats.faults, 1);
}

TEST(LinkRetryTest, SpikeWithinDeadlineIsJustSlow) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  net::RetryPolicy policy;
  policy.deadline_us = 10000;
  link.set_retry_policy(policy);
  injector.AddLatencySpike(/*after=*/0, /*count=*/1, /*extra_us=*/500);
  ASSERT_OK(link.SendMessage(10));
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.messages, 1);
}

TEST(LinkRetryTest, SingleAttemptPolicyDisablesRetry) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  net::RetryPolicy policy;
  policy.max_attempts = 1;
  link.set_retry_policy(policy);
  injector.FailMessages(0, 1);
  Status st = link.SendMessage(10);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(link.stats().retries, 0);
  EXPECT_EQ(link.stats().messages, 1);
}

// ---------------------------------------------------------------------------
// LinkedRowset accounting under faults (satellite: Restart + NextBatch
// interleavings; retries charge messages, rows never double-counted).
// ---------------------------------------------------------------------------

TEST(LinkedRowsetFaultTest, TransientFaultsChargeMessagesButRowsOnce) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)), &link,
      /*batch_rows=*/64);

  // Fault-free drain: 200 rows at batch 64 -> 3 full settles + final settle.
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained->size(), 200u);
  const int64_t clean_messages = link.stats().messages;
  EXPECT_EQ(clean_messages, 4);
  EXPECT_EQ(link.stats().rows, 200);

  // Same drain with one transient fault: one extra message (the resend),
  // exactly the same row count.
  link.ResetStats();  // Between queries: no concurrent charger.
  injector.Reset();
  injector.FailMessages(/*after=*/1, /*count=*/1);
  ASSERT_OK(rowset.Restart());
  drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained->size(), 200u);
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.messages, clean_messages + 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.rows, 200);  // Never double-counted across retries.
}

TEST(LinkedRowsetFaultTest, RestartNextBatchInterleavingsUnderFaults) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.FailMessages(/*after=*/2, /*count=*/1);
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)), &link,
      /*batch_rows=*/64);

  // Block-fetch drain across the faulted ordinal: every row arrives once.
  RowBatch batch;
  int64_t total = 0;
  while (true) {
    auto has = rowset.NextBatch(&batch, 64);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    total += static_cast<int64_t>(batch.size());
  }
  EXPECT_EQ(total, 200);
  net::LinkStats stats = link.stats();
  EXPECT_EQ(stats.rows, 200);
  EXPECT_EQ(stats.retries, 1);
  // 4 block messages plus the one faulted attempt.
  EXPECT_EQ(stats.messages, 5);

  // Interleave: restart, pull a few rows through Next() (pending,
  // unsettled), then Restart again and re-drain in blocks. The pending rows
  // are discarded by the second Restart without ever being settled, so the
  // final totals are exactly one extra full drain.
  ASSERT_OK(rowset.Restart());
  Row row;
  for (int i = 0; i < 10; ++i) {
    auto has = rowset.Next(&row);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(*has);
  }
  ASSERT_OK(rowset.Restart());
  total = 0;
  while (true) {
    auto has = rowset.NextBatch(&batch, 64);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    total += static_cast<int64_t>(batch.size());
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(link.stats().rows, 400);  // Exactly two drains, no double count.
}

TEST(LinkedRowsetFaultTest, RestartRecoversAfterExhaustedRetries) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  net::RetryPolicy policy;
  policy.max_attempts = 1;
  link.set_retry_policy(policy);
  injector.FailMessages(/*after=*/0, /*count=*/1);
  net::LinkedRowset rowset(
      std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)), &link,
      /*batch_rows=*/64);
  RowBatch batch;
  auto has = rowset.NextBatch(&batch, 64);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), StatusCode::kNetworkError);
  const int64_t rows_before = link.stats().rows;

  // Fault cleared: Restart + full drain works and charges exactly one drain.
  injector.Reset();
  ASSERT_OK(rowset.Restart());
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->size(), 200u);
  EXPECT_EQ(link.stats().rows - rows_before, 200);
}

// ---------------------------------------------------------------------------
// PrefetchingRowset under faults (satellites: producer always joins on
// early abandon; Restart works after a transient fault).
// ---------------------------------------------------------------------------

ExecOptions SmallBatches() {
  ExecOptions options;
  options.remote_batch_rows = 64;
  options.prefetch_queue_depth = 2;
  return options;
}

TEST(PrefetchFaultTest, ProducerAbsorbsTransientFaultViaRetry) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.FailMessages(/*after=*/1, /*count=*/1);
  ExecStats stats;
  {
    PrefetchingRowset rowset(
        std::make_unique<net::LinkedRowset>(
            std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)),
            &link, /*batch_rows=*/64),
        SmallBatches(), &stats);
    auto drained = DrainRowset(&rowset);
    ASSERT_TRUE(drained.ok()) << drained.status().ToString();
    EXPECT_EQ(drained->size(), 200u);
  }
  EXPECT_GE(link.stats().retries, 1);
  EXPECT_EQ(link.stats().rows, 200);
  EXPECT_EQ(PrefetchingRowset::live_producers(), 0);
}

TEST(PrefetchFaultTest, StickyErrorThenRestartRecoversAfterFaultCleared) {
  net::Link link("r");
  net::FaultInjector injector;
  link.set_fault_injector(&injector);
  injector.LinkDownAfter(/*after=*/1);
  ExecStats stats;
  PrefetchingRowset rowset(
      std::make_unique<net::LinkedRowset>(
          std::make_unique<VectorRowset>(OneIntSchema(), IntRows(200)), &link,
          /*batch_rows=*/64),
      SmallBatches(), &stats);
  Row row;
  Status error = Status::OK();
  while (true) {
    auto has = rowset.Next(&row);
    if (!has.ok()) {
      error = has.status();
      break;
    }
    if (!*has) break;
  }
  EXPECT_EQ(error.code(), StatusCode::kNetworkError);
  // Sticky until restarted.
  auto again = rowset.Next(&row);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNetworkError);

  // Transient outage over: the producer relaunches and re-drains fully.
  injector.Reset();
  ASSERT_OK(rowset.Restart());
  auto drained = DrainRowset(&rowset);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->size(), 200u);
}

TEST(PrefetchFaultTest, AbandonedConsumerAlwaysJoinsProducer) {
  ASSERT_EQ(PrefetchingRowset::live_producers(), 0);
  // Abandon with the producer mid-stream (blocked pushing into a full
  // queue): destruction must close the queue and join.
  {
    ExecStats stats;
    PrefetchingRowset rowset(
        std::make_unique<VectorRowset>(OneIntSchema(), IntRows(5000)),
        SmallBatches(), &stats);
    Row row;
    auto has = rowset.Next(&row);
    ASSERT_TRUE(has.ok());
  }
  EXPECT_EQ(PrefetchingRowset::live_producers(), 0);

  // Abandon without ever reading, with the producer hitting an error before
  // the consumer drains anything.
  {
    ExecStats stats;
    PrefetchingRowset rowset(
        std::make_unique<FlakyRowset>(OneIntSchema(), /*fail_after=*/10),
        SmallBatches(), &stats);
  }
  EXPECT_EQ(PrefetchingRowset::live_producers(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: engine-level retry recovery, attributed errors, session
// teardown, and the partitioned-view degradation knob.
// ---------------------------------------------------------------------------

TEST(EndToEndFaultTest, TransientFaultRecoversAndShowsInExecStats) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "r");
  MustExecute(remote.engine.get(), "CREATE TABLE t (a INT)");
  for (int i = 0; i < 100; ++i) {
    MustExecute(remote.engine.get(),
                "INSERT INTO t (a) VALUES (" + std::to_string(i) + ")");
  }
  // Warm up sessions, metadata and the plan cache fault-free.
  QueryResult clean = MustExecute(&host, "SELECT COUNT(*) FROM r.d.s.t");
  EXPECT_EQ(RowsToString(clean), "(100)");
  EXPECT_EQ(clean.exec_stats.remote_retries, 0);
  EXPECT_EQ(clean.exec_stats.faults_injected, 0);

  // One transient single-message fault mid-stream: the retry absorbs it and
  // the per-query counters record it.
  remote.injector->Reset();
  remote.injector->FailMessages(/*after=*/1, /*count=*/1);
  QueryResult faulted = MustExecute(&host, "SELECT COUNT(*) FROM r.d.s.t");
  EXPECT_EQ(RowsToString(faulted), "(100)");
  EXPECT_GE(faulted.exec_stats.remote_retries, 1);
  EXPECT_GE(faulted.exec_stats.faults_injected, 1);
  EXPECT_EQ(PrefetchingRowset::live_producers(), 0);
}

TEST(EndToEndFaultTest, LinkDownSurfacesAttributedErrorAndEngineRecovers) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "r");
  MustExecute(remote.engine.get(), "CREATE TABLE t (a INT)");
  MustExecute(remote.engine.get(), "INSERT INTO t (a) VALUES (5)");
  EXPECT_EQ(RowsToString(MustExecute(&host, "SELECT a FROM r.d.s.t")), "(5)");

  remote.injector->Reset();
  remote.injector->LinkDownAfter(0);
  auto result = host.Execute("SELECT a FROM r.d.s.t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(result.status().message().find("'r'"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(PrefetchingRowset::live_producers(), 0);

  // Outage over: the engine reconnects (the failed query tore down the
  // cached session) and the same statement works again.
  remote.injector->Reset();
  EXPECT_EQ(RowsToString(MustExecute(&host, "SELECT a FROM r.d.s.t")), "(5)");
}

TEST(EndToEndFaultTest, DropRemoteSessionsForcesReconnect) {
  Engine host;
  RemoteServer remote = AttachRemoteEngine(&host, "r");
  MustExecute(remote.engine.get(), "CREATE TABLE t (a INT)");
  auto id_result = host.catalog()->GetLinkedServerId("r");
  ASSERT_TRUE(id_result.ok());
  const int id = *id_result;
  auto first = host.catalog()->GetSession(id);
  auto again = host.catalog()->GetSession(id);
  ASSERT_TRUE(first.ok() && again.ok());
  EXPECT_EQ(*first, *again);  // Cached.

  const int64_t messages_before = remote.link->stats().messages;
  host.catalog()->DropRemoteSessions();
  auto fresh = host.catalog()->GetSession(id);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, nullptr);
  // The reconnect paid a new session handshake on the link.
  EXPECT_GT(remote.link->stats().messages, messages_before);
}

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep execution the only fallible phase: metadata was validated during
    // the fault-free warmup below.
    host_.options()->delayed_schema_validation = false;
    for (int m = 0; m < 3; ++m) {
      RemoteServer server = AttachRemoteEngine(&host_, "m" + std::to_string(m));
      MustExecute(server.engine.get(), "CREATE TABLE part (id INT, v INT)");
      for (int i = 0; i < 20; ++i) {
        MustExecute(server.engine.get(),
                    "INSERT INTO part (id, v) VALUES (" +
                        std::to_string(m * 1000 + i) + ", " +
                        std::to_string(i) + ")");
      }
      servers_.push_back(std::move(server));
    }
    MustExecute(&host_,
                "CREATE VIEW part_all AS "
                "SELECT * FROM m0.d.s.part UNION ALL "
                "SELECT * FROM m1.d.s.part UNION ALL "
                "SELECT * FROM m2.d.s.part");
    baseline_ = RowMultiset(MustExecute(&host_, kQuery));
    EXPECT_EQ(baseline_.size(), 60u);
  }

  static std::multiset<std::string> RowMultiset(const QueryResult& result) {
    std::multiset<std::string> out;
    for (const Row& row : result.rowset->rows()) out.insert(RowToString(row));
    return out;
  }

  /// The fault-free multiset minus member `m`'s rows (ids m*1000..m*1000+19).
  std::multiset<std::string> WithoutMember(int m) const {
    std::multiset<std::string> out;
    for (const std::string& row : baseline_) {
      const int id = std::atoi(row.c_str() + 1);  // Rows render "(id, v)".
      if (id >= m * 1000 && id < m * 1000 + 1000) continue;
      out.insert(row);
    }
    return out;
  }

  static constexpr const char* kQuery = "SELECT id, v FROM part_all";

  Engine host_;
  std::vector<RemoteServer> servers_;
  std::multiset<std::string> baseline_;
};

TEST_F(DegradationTest, KnobOffUnreachableMemberFailsTheQuery) {
  servers_[1].injector->Reset();  // Rewind past the warmup's ordinals.
  servers_[1].injector->LinkDownAfter(0);
  for (int dop : {1, 4}) {
    host_.options()->execution.concat_dop = dop;
    auto result = host_.Execute(kQuery);
    ASSERT_FALSE(result.ok()) << "dop=" << dop;
    EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
    EXPECT_EQ(PrefetchingRowset::live_producers(), 0);
  }
}

TEST_F(DegradationTest, KnobOnSkipsUnreachableMemberAndReports) {
  servers_[1].injector->Reset();  // Rewind past the warmup's ordinals.
  servers_[1].injector->LinkDownAfter(0);
  host_.options()->execution.skip_unreachable_members = true;
  const std::multiset<std::string> expected = WithoutMember(1);
  ASSERT_EQ(expected.size(), 40u);

  for (int dop : {1, 4}) {
    host_.options()->execution.concat_dop = dop;
    auto result = host_.Execute(kQuery);
    ASSERT_TRUE(result.ok()) << "dop=" << dop << ": "
                             << result.status().ToString();
    EXPECT_EQ(RowMultiset(*result), expected) << "dop=" << dop;
    EXPECT_EQ(result->exec_stats.members_skipped, 1) << "dop=" << dop;
    ASSERT_EQ(result->warnings.size(), 1u) << "dop=" << dop;
    EXPECT_NE(result->warnings[0].find("m1"), std::string::npos)
        << result->warnings[0];
    EXPECT_EQ(PrefetchingRowset::live_producers(), 0);
  }
}

TEST_F(DegradationTest, KnobOnStillFailsWhenMemberDiesMidStream) {
  // The member answers the open + first block, then the link dies: rows
  // already surfaced cannot be retracted, so skipping would be a silent
  // partial — the query must fail even with the knob on.
  host_.options()->execution.skip_unreachable_members = true;
  host_.options()->execution.concat_dop = 1;
  host_.options()->execution.enable_remote_prefetch = false;
  // Grow the member past one wire block (64 rows) so the scan spans several
  // settles: ordinal 0 is the open/execute message, ordinal 1 the first
  // block's settle (64 rows delivered to the consumer), ordinal 2 the next
  // settle — by then rows have already surfaced, so the skip must be
  // refused even with the knob on.
  for (int i = 20; i < 120; ++i) {
    MustExecute(servers_[1].engine.get(),
                "INSERT INTO part (id, v) VALUES (" +
                    std::to_string(1000 + i) + ", " + std::to_string(i) + ")");
  }
  servers_[1].injector->Reset();
  servers_[1].injector->LinkDownAfter(2);
  auto result = host_.Execute(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
}

}  // namespace
}  // namespace dhqp
