// Deterministic chaos suite: ~100 seeded fault schedules against a small
// federation (3 linked members + a local table). Every schedule scripts the
// members' fault injectors and retry policies from a single seeded Rng
// (tests/test_util.h ChaosSeed), runs the workload queries, and asserts the
// two chaos invariants:
//   (a) every query either returns the exact fault-free result multiset or
//       a clean provider-attributed network error — never a hang, crash, or
//       silent partial result — and leaks no producer threads;
//   (b) replaying the same seed under a single-threaded configuration
//       reproduces the same outcome (fault decisions are a pure function of
//       (seed, message ordinal); with prefetch/parallel branches disabled
//       the ordinal sequence itself is deterministic).
//
// Runs as its own ctest binary labeled "chaos;slow" (tests/CMakeLists.txt);
// `ctest -L tier1` excludes it, plain `ctest` includes it.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/executor/prefetch.h"
#include "tests/test_util.h"

namespace dhqp {
namespace {

constexpr uint64_t kSuiteTag = 0xFA17;  // All schedule seeds derive from this.
constexpr int kMembers = 3;
constexpr int kSchedules = 100;

const std::vector<std::string>& Workload() {
  static const std::vector<std::string>* queries = new std::vector<std::string>{
      // Partitioned-view scan: fans out over all member links.
      "SELECT id, v FROM part_all",
      // Aggregate over the view: exercises drained-to-completion paths.
      "SELECT COUNT(*), SUM(v) FROM part_all",
      // Local-remote join: exercises remote query + rescan machinery.
      "SELECT t_local.k, part.v FROM t_local, m0.d.s.part "
      "WHERE t_local.k = part.id",
  };
  return *queries;
}

struct Federation {
  std::unique_ptr<Engine> host;
  std::vector<RemoteServer> members;
  std::vector<std::string> baselines;  // Fault-free fingerprint per query.
};

/// Sorted row multiset (order-insensitive) or the error code: the canonical
/// "outcome" of one query for both invariants.
std::string Fingerprint(const Result<QueryResult>& result) {
  if (!result.ok()) {
    return "ERR:" + std::to_string(static_cast<int>(result.status().code()));
  }
  std::multiset<std::string> rows;
  for (const Row& row : result->rowset->rows()) rows.insert(RowToString(row));
  std::string out = "OK:";
  for (const std::string& row : rows) out += row;
  return out;
}

Federation BuildFederation() {
  Federation fed;
  fed.host = std::make_unique<Engine>();
  for (int m = 0; m < kMembers; ++m) {
    RemoteServer server =
        AttachRemoteEngine(fed.host.get(), "m" + std::to_string(m));
    MustExecute(server.engine.get(), "CREATE TABLE part (id INT, v INT)");
    for (int i = 0; i < 40; ++i) {
      MustExecute(server.engine.get(),
                  "INSERT INTO part (id, v) VALUES (" +
                      std::to_string(m * 1000 + i) + ", " + std::to_string(i) +
                      ")");
    }
    fed.members.push_back(std::move(server));
  }
  MustExecute(fed.host.get(),
              "CREATE VIEW part_all AS "
              "SELECT * FROM m0.d.s.part UNION ALL "
              "SELECT * FROM m1.d.s.part UNION ALL "
              "SELECT * FROM m2.d.s.part");
  MustExecute(fed.host.get(), "CREATE TABLE t_local (k INT)");
  for (int i = 0; i < 10; ++i) {
    MustExecute(fed.host.get(),
                "INSERT INTO t_local (k) VALUES (" + std::to_string(i) + ")");
  }
  for (const std::string& sql : Workload()) {
    auto result = fed.host->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    fed.baselines.push_back(Fingerprint(result));
  }
  return fed;
}

/// Disarms every injector and re-runs the workload fault-free. Restores the
/// normalized pre-schedule state: live sessions, warm plan/metadata/stats
/// caches. Replay determinism is defined from this state.
void Normalize(Federation* fed) {
  for (RemoteServer& member : fed->members) member.injector->Reset();
  for (const std::string& sql : Workload()) {
    auto result = fed->host->Execute(sql);
    ASSERT_TRUE(result.ok()) << "fault-free warmup failed: " << sql << " -> "
                             << result.status().ToString();
  }
}

/// Scripts all member injectors + retry policies + exec options from `seed`.
/// Pure function of the seed: arming twice yields identical schedules.
void ArmSchedule(Federation* fed, uint64_t seed, bool sequential_config) {
  Rng rng(ChaosSeed(kSuiteTag, seed));
  for (RemoteServer& member : fed->members) {
    net::FaultInjector* injector = member.injector.get();
    injector->Reset(rng.Next());  // Rewind ordinals; reseed the drop hash.
    net::RetryPolicy policy;
    policy.max_attempts = static_cast<int>(rng.Uniform(1, 4));
    policy.backoff_us = static_cast<double>(rng.Uniform(1, 100));
    policy.max_backoff_us = 1000;
    switch (rng.Uniform(0, 9)) {
      case 0:
      case 1:
      case 2:
        break;  // This member rides out the schedule clean.
      case 3:
        injector->FailMessages(static_cast<int64_t>(rng.Uniform(0, 20)),
                               static_cast<int64_t>(rng.Uniform(1, 3)));
        break;
      case 4:
        injector->FailMessages(static_cast<int64_t>(rng.Uniform(0, 10)),
                               static_cast<int64_t>(rng.Uniform(1, 2)));
        injector->FailMessages(static_cast<int64_t>(rng.Uniform(10, 30)),
                               static_cast<int64_t>(rng.Uniform(1, 2)));
        break;
      case 5:
        injector->SetDropProbability(0.02 + 0.1 * rng.NextDouble());
        break;
      case 6:
        injector->AddLatencySpike(static_cast<int64_t>(rng.Uniform(0, 15)),
                                  static_cast<int64_t>(rng.Uniform(1, 3)),
                                  /*extra_us=*/500);
        policy.deadline_us = 200;  // Turns the spikes into timeouts.
        break;
      case 7:
        injector->LinkDownAfter(static_cast<int64_t>(rng.Uniform(0, 25)));
        break;
      case 8:
        injector->FailMessages(static_cast<int64_t>(rng.Uniform(0, 15)),
                               static_cast<int64_t>(rng.Uniform(1, 2)));
        injector->AddLatencySpike(static_cast<int64_t>(rng.Uniform(0, 15)),
                                  static_cast<int64_t>(rng.Uniform(1, 2)),
                                  /*extra_us=*/500);
        policy.deadline_us = 200;
        break;
      default:
        injector->LinkDownAfter(0);
        break;
    }
    member.link->set_retry_policy(policy);
  }
  ExecOptions* exec = &fed->host->options()->execution;
  exec->skip_unreachable_members = false;  // Strict: no partial results.
  if (sequential_config) {
    // One consumer thread, one message stream per link: the fault pattern
    // (not just the fault set) replays exactly.
    exec->concat_dop = 1;
    exec->enable_remote_prefetch = false;
  } else {
    exec->concat_dop = rng.Uniform(0, 1) == 0 ? 1 : 4;
    exec->enable_remote_prefetch = rng.Uniform(0, 1) == 0;
  }
}

/// Runs the armed workload; returns the concatenated per-query outcomes.
/// Asserts chaos invariant (a) for every query against the baselines.
std::string RunArmed(Federation* fed) {
  std::string outcome;
  for (size_t q = 0; q < Workload().size(); ++q) {
    auto result = fed->host->Execute(Workload()[q]);
    const std::string fp = Fingerprint(result);
    if (result.ok()) {
      // Exact fault-free multiset — retries and skipped-then-recompiled
      // plans must never duplicate or drop rows.
      EXPECT_EQ(fp, fed->baselines[q]) << Workload()[q];
    } else {
      // Clean, provider-attributed error: the normal Result<> path, naming
      // the linked server that failed.
      EXPECT_EQ(result.status().code(), StatusCode::kNetworkError)
          << result.status().ToString();
      EXPECT_NE(result.status().message().find("linked server"),
                std::string::npos)
          << result.status().ToString();
    }
    // Never a leaked producer thread, whatever the outcome.
    EXPECT_EQ(PrefetchingRowset::live_producers(), 0) << Workload()[q];
    outcome += fp + "|";
  }
  return outcome;
}

TEST(ChaosSchedulesTest, EveryScheduleYieldsExactResultOrCleanError) {
  Federation fed = BuildFederation();
  ASSERT_EQ(fed.baselines.size(), Workload().size());
  for (uint64_t seed = 0; seed < kSchedules; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    Normalize(&fed);
    if (::testing::Test::HasFatalFailure()) return;
    // Mixed configurations: prefetch threads and parallel branches draw
    // from the same scripted fault stream.
    ArmSchedule(&fed, seed, /*sequential_config=*/false);
    RunArmed(&fed);
  }
  // The engine is still fully usable after 100 schedules.
  Normalize(&fed);
}

// Intra-query parallelism must not perturb chaos determinism: the exchange
// enforcer applies only to fully-local subtrees, so every remote-involving
// workload query keeps a serial (exchange-free) plan — and with it the
// wire-message ordinal sequence the injectors script against — at any dop.
// Same seed, same outcome, whether the host runs with dop=1 or dop=4.
TEST(ChaosSchedulesTest, SameSeedSameOutcomeUnderDop) {
  Federation fed = BuildFederation();
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    std::string outcomes[2];
    const int dops[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      // dop set BEFORE Normalize: the fault-free warmup (re)compiles the
      // workload under this dop (the plan cache keys on it), so no
      // compile-time remote traffic consumes scripted ordinals during the
      // armed run.
      fed.host->options()->execution.dop = dops[i];
      Normalize(&fed);
      if (::testing::Test::HasFatalFailure()) return;
      ArmSchedule(&fed, seed, /*sequential_config=*/true);
      outcomes[i] = RunArmed(&fed);
    }
    EXPECT_EQ(outcomes[0], outcomes[1])
        << "seed " << seed << " outcome depends on dop";
  }
  // The serial-remote-subtree rule, checked structurally: even at dop=4 the
  // remote-involving workload plans contain no exchange operator.
  fed.host->options()->execution.dop = 4;
  Normalize(&fed);
  for (const std::string& sql : Workload()) {
    auto result = fed.host->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    EXPECT_EQ(CountOps(result->plan, PhysicalOpKind::kExchange), 0) << sql;
  }
  fed.host->options()->execution.dop = 1;
}

TEST(ChaosSchedulesTest, SameSeedReproducesSameOutcome) {
  Federation fed = BuildFederation();
  for (uint64_t seed = 0; seed < kSchedules; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    Normalize(&fed);
    if (::testing::Test::HasFatalFailure()) return;
    ArmSchedule(&fed, seed, /*sequential_config=*/true);
    const std::string first = RunArmed(&fed);

    Normalize(&fed);
    if (::testing::Test::HasFatalFailure()) return;
    ArmSchedule(&fed, seed, /*sequential_config=*/true);
    const std::string second = RunArmed(&fed);

    EXPECT_EQ(first, second) << "seed " << seed
                             << " did not replay deterministically";
  }
}

}  // namespace
}  // namespace dhqp
