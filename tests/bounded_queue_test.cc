// BoundedQueue unit suite: the blocking/close contract every exchange,
// prefetch, and Concat pipeline leans on, plus the wait-hook overloads the
// wait-statistics subsystem uses to time blocked intervals. Deliberately
// thread-heavy — run under -DDHQP_TSAN=ON this is the race check for the
// queue itself.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/executor/bounded_queue.h"

namespace dhqp {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
}

// Capacity-1 ping-pong: producer and consumer strictly alternate, so both
// sides block on every step. Checks order is preserved and the hooks see
// real (non-negative) blocked intervals, one per blocked call at most.
TEST(BoundedQueueTest, CapacityOnePingPong) {
  constexpr int kItems = 2000;
  BoundedQueue<int> q(1);
  std::atomic<int64_t> push_blocks{0};
  std::atomic<int64_t> pop_blocks{0};

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.Push(i, [&](int64_t ticks) {
        EXPECT_GE(ticks, 0);
        push_blocks.fetch_add(1);
      }));
    }
    q.Close();
  });

  int expect = 0;
  int v = -1;
  while (q.Pop(&v, [&](int64_t ticks) {
    EXPECT_GE(ticks, 0);
    pop_blocks.fetch_add(1);
  })) {
    EXPECT_EQ(v, expect++);
  }
  producer.join();
  EXPECT_EQ(expect, kItems);
  // With capacity 1 at least one side must have genuinely blocked; the hook
  // never fires more than once per call.
  EXPECT_GT(push_blocks.load() + pop_blocks.load(), 0);
  EXPECT_LE(push_blocks.load(), kItems);
  EXPECT_LE(pop_blocks.load(), kItems + 1);
}

// Close() while producers are parked on a full queue must wake them all;
// their Push returns false and nothing deadlocks.
TEST(BoundedQueueTest, CloseWakesBlockedProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));  // Fill to capacity.

  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&q, &rejected] {
      if (!q.Push(1)) rejected.fetch_add(1);
    });
  }
  // Let the producers park (best effort; correctness doesn't depend on it).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
}

// Close() with items still queued: consumers drain the remainder in order,
// then Pop returns false.
TEST(BoundedQueueTest, CloseThenDrainPreservesOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  EXPECT_FALSE(q.Push(99));  // Closed: rejected, not queued.
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.Pop(&v));
}

// Close() wakes consumers parked on an empty queue; the pop hook still
// reports the blocked interval even though no item arrived.
TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int64_t> blocked_ns{-1};
  std::thread consumer([&] {
    int v = -1;
    EXPECT_FALSE(q.Pop(&v, [&](int64_t ticks) { blocked_ns.store(ticks); }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  consumer.join();
  EXPECT_GE(blocked_ns.load(), 0);  // Hook fired for the fruitless wait.
}

// Many producers, many consumers: every pushed item is popped exactly once.
TEST(BoundedQueueTest, MultiProducerMultiConsumer) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<int> popped{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = -1;
      while (q.Pop(&v)) {
        seen[static_cast<size_t>(v)].fetch_add(1);
        popped.fetch_add(1);
      }
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
}  // namespace dhqp
